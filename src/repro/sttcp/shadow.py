"""ST-TCP shadowing as a TCP extension (§4.1, §4.2, §5).

Everything that used to make a backup's connection "special" inside the
core TCP stack now lives here, behind the
:class:`repro.tcp.extension.TCPExtension` hook API:

* **Output suppression** — the shadow processes every tapped segment and
  advances all state exactly like the primary, but its built segments
  are vetoed in ``filter_transmit`` instead of reaching IP, and the core
  arms no transmission-causing timers while
  :attr:`~repro.tcp.tcb.TCPConnection.output_inhibited` is set.
* **ISN synchronisation** — primary and backup choose different ISNs, so
  the shadow re-anchors its send sequence space on the primary's ISN
  (§4.1 step 3): from the client's handshake ACK in ``on_ack``, or from
  the tapped primary SYN/ACK via :meth:`learn_primary_isn` when the tap
  lost the early client segments.
* **Pending-ACK deferral** — a client ACK may cover bytes the primary
  sent that the (slower) shadow application has not produced yet; it is
  stashed and applied in ``after_output`` as the data materialises
  (§4.2, determinism assumption).
* **Takeover** — :meth:`takeover` lifts suppression, go-back-N
  retransmits anything in flight (or announces liveness with a pure
  ACK), and attaches an :class:`repro.obs.tcp_ext.FirstAckProbe` so the
  failover timeline records when the client's first retransmission is
  accepted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.tcp_ext import FirstAckProbe
from repro.tcp.constants import TCPState
from repro.tcp.extension import TCPExtension
from repro.tcp.seqspace import unwrap, wrap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.segment import TCPSegment
    from repro.tcp.tcb import TCPConnection


class ShadowExtension(TCPExtension):
    """Makes one connection an output-suppressed, ISN-syncing shadow."""

    name = "sttcp.shadow"

    def __init__(self) -> None:
        #: True until takeover: built segments are vetoed, not sent.
        self.suppressing = True
        #: True once the send sequence space sits on the primary's ISN.
        self.isn_rebased = False
        #: Client ACK running ahead of locally produced data (absolute).
        self.pending_ack: Optional[int] = None
        self._applying_pending_ack = False
        #: Segments built and vetoed while suppressing.
        self.suppressed_segments = 0

    @classmethod
    def of(cls, conn: "TCPConnection") -> Optional["ShadowExtension"]:
        """The connection's shadow extension, or None if it has none."""
        for ext in conn.extensions:
            if isinstance(ext, cls):
                return ext
        return None

    # -- lifecycle ------------------------------------------------------------
    def on_attach(self, conn: "TCPConnection") -> None:
        conn.output_inhibited = True

    # -- output suppression ---------------------------------------------------
    def filter_transmit(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        if not self.suppressing:
            return True
        self.suppressed_segments += 1
        conn.trace_event("suppressed", seg=segment)
        return False

    # -- inbound absorption before ISN sync -----------------------------------
    def on_segment_in(self, conn: "TCPConnection", segment: "TCPSegment") -> bool:
        if (
            not self.isn_rebased
            and conn.state is TCPState.SYN_RCVD
            and segment.is_ack
            and unwrap(segment.seq, conn.rcv_nxt) != conn.irs + 1
        ):
            # A late client segment reached an un-synchronised shadow (the
            # tap lost the early exchange).  Its *cumulative* ACK does not
            # reveal the primary's ISN — rebasing from it would skew the
            # whole sequence mapping — so absorb the payload only and keep
            # waiting for a safe ISN source (a seq==IRS+1 segment, or the
            # tapped primary SYN/ACK via the backup engine).
            if segment.payload_length:
                conn.inject_receive_data(
                    unwrap(segment.seq, conn.rcv_nxt), segment.payload
                )
            return True
        return False

    # -- ISN synchronisation + pending-ACK clamp ------------------------------
    def on_ack(
        self, conn: "TCPConnection", segment: "TCPSegment", ack_abs: int
    ) -> int:
        if conn.state is TCPState.SYN_RCVD and not self.isn_rebased:
            # Shadow handshake (§4.1 step 3): the client's handshake ACK
            # acknowledges primary_ISS + 1; our own (suppressed) SYN/ACK
            # used a different ISN, so rewrite all send sequence state
            # before standard processing sees the ACK.
            old_iss = conn.iss
            conn.adopt_send_isn(ack_abs - 1)
            self.isn_rebased = True
            conn.trace_event("isn_rebase", old=wrap(old_iss), new=wrap(conn.iss))
            ack_abs = unwrap(segment.ack, conn.snd_una)
        if ack_abs > conn.snd_max:
            # The client acknowledged bytes the primary sent but our
            # (slower) shadow application has not produced yet.  Remember
            # and apply once the data materialises (§4.2, determinism
            # assumption).
            self.pending_ack = max(self.pending_ack or 0, ack_abs)
            ack_abs = conn.snd_max
        return ack_abs

    def learn_primary_isn(self, conn: "TCPConnection", isn_abs: int) -> None:
        """ISN sync from the *tapped primary SYN/ACK* (whose seq field is
        the ISN itself) — the source that works even when the tap lost
        every early client segment."""
        if self.isn_rebased or conn.state is not TCPState.SYN_RCVD:
            return
        old_iss = conn.iss
        conn.adopt_send_isn(isn_abs)
        self.isn_rebased = True
        conn.trace_event(
            "isn_rebase_from_synack", old=wrap(old_iss), new=wrap(conn.iss)
        )

    # -- pending-ACK application ----------------------------------------------
    def after_output(self, conn: "TCPConnection") -> None:
        """Apply a client ACK that ran ahead of the shadow application.

        Handling the ack wakes the (shadow) application, which writes and
        virtually sends more data, which may allow more of the pending
        ack to apply — iterated here with a re-entrancy guard, because
        the wake path leads straight back into ``try_output``.
        """
        if self._applying_pending_ack:
            return
        self._applying_pending_ack = True
        try:
            while self.pending_ack is not None:
                pending = self.pending_ack
                target = min(pending, conn.snd_max)
                if pending <= conn.snd_max:
                    self.pending_ack = None
                if target > conn.snd_una:
                    conn.input.apply_cumulative_ack(target)
                elif self.pending_ack is not None:
                    break  # no progress possible until more data is produced
        finally:
            self._applying_pending_ack = False

    # -- failover -------------------------------------------------------------
    def takeover(self, conn: "TCPConnection") -> None:
        """Failover: make this shadow connection live (§5).

        Output suppression is lifted; if unacknowledged data is
        outstanding it is retransmitted immediately, otherwise a pure ACK
        announces the (indistinguishable) server's liveness.
        """
        if not self.suppressing:
            return
        self.suppressing = False
        conn.output_inhibited = False
        # The next segment the client sends us marks the end of its
        # outage — record it through an obs-side probe, not core state.
        # The tracer's dynamic flow context (set by the backup around
        # takeover completion) rides along so the eventual first-ack
        # record joins the failover's causal chain.
        conn.add_extension(FirstAckProbe(flow=conn.sim.trace.current_flow))
        conn.trace_event("takeover", flight=conn.flight_size)
        if conn.state is TCPState.CLOSED:
            return
        if conn.flight_size > 0:
            # The primary may have died mid-burst: bytes this shadow
            # "sent" virtually but the primary never put on the wire are
            # holes the client cannot dup-ack us toward.  Retransmit the
            # head now and go-back-N through the rest as ACKs return.
            conn.retransmit.force_go_back_n()
        elif conn.is_synchronized:
            conn.ack_now()
        conn.try_output()

"""Tests for UDP sockets and the port table."""

import pytest

from repro.errors import ConnectionClosed, PortInUseError
from repro.sim.simulator import Simulator
from repro.udp.datagram import UDPDatagram
from repro.udp.layer import EPHEMERAL_PORT_START

from tests.conftest import LanPair


@pytest.fixture
def lan():
    return LanPair(Simulator(seed=21))


def test_datagram_validation():
    with pytest.raises(ValueError):
        UDPDatagram(0, 80, b"", 0)
    with pytest.raises(ValueError):
        UDPDatagram(80, 70000, b"", 0)
    with pytest.raises(ValueError):
        UDPDatagram(80, 81, b"", -1)


def test_datagram_size_includes_header():
    assert UDPDatagram(1000, 2000, b"x", 10).size == 18


def test_port_conflict_rejected(lan):
    lan.a.udp.socket(5000)
    with pytest.raises(PortInUseError):
        lan.a.udp.socket(5000)


def test_ephemeral_allocation(lan):
    first = lan.a.udp.socket()
    second = lan.a.udp.socket()
    assert first.port >= EPHEMERAL_PORT_START
    assert first.port != second.port


def test_port_reusable_after_close(lan):
    sock = lan.a.udp.socket(5000)
    sock.close()
    lan.a.udp.socket(5000)  # must not raise


def test_coroutine_recv(lan):
    sock_b = lan.b.udp.socket(5000)
    outcome = {}

    def receiver():
        payload, addr = yield sock_b.recv()
        outcome["payload"] = payload.to_bytes()
        outcome["port"] = addr[1]

    process = lan.b.spawn(receiver())
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 5000), b"hello")
    lan.sim.run_until_complete(process, deadline=2.0)
    assert outcome == {"payload": b"hello", "port": 6000}


def test_recv_queues_when_no_waiter(lan):
    sock_b = lan.b.udp.socket(5000)
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 5000), b"one")
    sender.send_to((lan.ip_b, 5000), b"two")
    lan.sim.run(until=1.0)
    got = []

    def receiver():
        for _ in range(2):
            payload, _addr = yield sock_b.recv()
            got.append(payload.to_bytes())

    process = lan.b.spawn(receiver())
    lan.sim.run_until_complete(process, deadline=2.0)
    assert got == [b"one", b"two"]


def test_send_on_closed_socket_raises(lan):
    sock = lan.a.udp.socket(5000)
    sock.close()
    with pytest.raises(ConnectionClosed):
        sock.send_to((lan.ip_b, 5000), b"x")


def test_close_fails_pending_recv(lan):
    sock = lan.b.udp.socket(5000)
    event = sock.recv()
    sock.close()
    assert event.triggered
    with pytest.raises(ConnectionClosed):
        _ = event.value


def test_unbound_port_drops(lan):
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 4242), b"nobody")
    lan.sim.run(until=1.0)
    assert lan.b.udp.dropped_no_port == 1


def test_protocol_object_payload_with_explicit_size(lan):
    class Message:
        pass

    received = []
    sock_b = lan.b.udp.socket(5000)
    sock_b.on_datagram = lambda payload, addr: received.append(payload)
    sender = lan.a.udp.socket(6000)
    message = Message()
    sender.send_to((lan.ip_b, 5000), message, payload_size=82)
    lan.sim.run(until=1.0)
    assert received == [message]

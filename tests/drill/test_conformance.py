"""The drill conformance corpus, surfaced as tier-1 tests.

Each script under ``tests/drill/scripts/`` becomes one pytest case, so a
stack regression names the exact behaviour it broke.  A second pass runs
the whole corpus twice and asserts the reports are byte-identical — the
determinism guarantee CI relies on.
"""

from pathlib import Path

import pytest

from repro.drill import format_report, run_drill_file, run_drill_path

SCRIPTS_DIR = Path(__file__).parent / "scripts"
SCRIPTS = sorted(SCRIPTS_DIR.glob("t*.py"))


def test_corpus_is_populated():
    assert len(SCRIPTS) >= 20
    assert sum(1 for s in SCRIPTS if "sttcp" in s.name) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_drill_script_passes(script):
    result = run_drill_file(script)
    assert result.passed, f"\n{result.failure}"


def test_corpus_report_is_deterministic():
    first = format_report(run_drill_path(SCRIPTS_DIR))
    second = format_report(run_drill_path(SCRIPTS_DIR))
    assert first == second
    assert f"{len(SCRIPTS)}/{len(SCRIPTS)} scripts passed" in first

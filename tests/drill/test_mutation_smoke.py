"""Mutation smoke checks: the ST-TCP drills must *fail* when the
takeover logic is deliberately broken.

A conformance corpus that keeps passing under a sabotaged stack tests
nothing; each case here perturbs one load-bearing piece of the failover
path and asserts the matching drill catches it.
"""

from pathlib import Path

from repro.drill import run_drill_file
from repro.sttcp.shadow import ShadowExtension
from repro.tcp.tcb import TCPConnection

SCRIPTS = Path(__file__).parent / "scripts"


def test_takeover_noop_breaks_liveness_drill(monkeypatch):
    monkeypatch.setattr(TCPConnection, "takeover", lambda self: None)
    result = run_drill_file(SCRIPTS / "t24_sttcp_takeover_liveness.py")
    assert not result.passed
    result = run_drill_file(SCRIPTS / "t25_sttcp_no_duplicate_delivery.py")
    assert not result.passed


def test_isn_rebase_noop_breaks_shadow_drill(monkeypatch):
    # Both rebase sources (tapped primary SYN/ACK, client handshake ACK)
    # must be disabled: with a lossless tap either alone suffices.
    monkeypatch.setattr(
        ShadowExtension, "learn_primary_isn", lambda self, conn, isn_abs: None
    )

    def no_rebase_on_ack(self, conn, segment, ack_abs):
        # Keep the pending-ACK clamp, drop only the ISN rebase.
        if ack_abs > conn.snd_max:
            self.pending_ack = max(self.pending_ack or 0, ack_abs)
            ack_abs = conn.snd_max
        return ack_abs

    monkeypatch.setattr(ShadowExtension, "on_ack", no_rebase_on_ack)
    result = run_drill_file(SCRIPTS / "t23_sttcp_shadow_convergence.py")
    assert not result.passed


def test_takeover_resending_acked_bytes_breaks_no_duplicate_drill(monkeypatch):
    # A takeover that retransmits from the start of the *stream* instead
    # of the client's cumulative ACK re-delivers acknowledged bytes; the
    # drill's expect_no on seq 1 must catch the duplicate.
    from repro.tcp.constants import FLAG_ACK
    from repro.util.bytespan import PatternBytes

    original = ShadowExtension.takeover

    def duplicating(self, conn):
        was_shadow = self.suppressing and conn.flight_size > 0
        original(self, conn)
        if was_shadow:
            conn.output.emit(FLAG_ACK, conn.iss + 1, PatternBytes(1460, 0, 7))

    monkeypatch.setattr(ShadowExtension, "takeover", duplicating)
    result = run_drill_file(SCRIPTS / "t25_sttcp_no_duplicate_delivery.py")
    assert not result.passed
    assert "seq 1" in result.failure


def test_misordered_filter_transmit_chain_breaks_ordering_drill(monkeypatch):
    # Sabotage the veto chain: instead of "first veto wins", let the
    # *first* extension's verdict decide alone.  With the obs probe
    # stacked behind the suppressor this is harmless for the verdict —
    # but the probe is never consulted on vetoed segments in the correct
    # protocol, while the sabotaged dispatch (taking only chain[0])
    # still suppresses yet ALSO stops maintaining the rest of the chain;
    # we model the classic mis-ordering by reversing the chain so the
    # permissive probe answers first and shadow segments leak onto the
    # wire.  The ordering drill's silence window must catch the leak.
    from repro.tcp.output import OutputEngine

    original = OutputEngine.transmit

    def misordered(self, segment):
        conn = self.conn
        vetoers = conn._ext_filter_transmit
        if vetoers:
            if vetoers[-1].filter_transmit(conn, segment):
                # Last-registered extension decided alone: earlier
                # (suppressing) extensions never got their veto.
                conn.segments_sent += 1
                conn.bytes_sent += segment.payload_length
                conn.trace_event("send", seg=segment)
                conn.layer.send_segment(conn, segment)
            return
        original(self, segment)

    monkeypatch.setattr(OutputEngine, "transmit", misordered)
    result = run_drill_file(SCRIPTS / "t26_sttcp_extension_ordering.py")
    assert not result.passed

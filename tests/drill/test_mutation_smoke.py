"""Mutation smoke checks: the ST-TCP drills must *fail* when the
takeover logic is deliberately broken.

A conformance corpus that keeps passing under a sabotaged stack tests
nothing; each case here perturbs one load-bearing piece of the failover
path and asserts the matching drill catches it.
"""

from pathlib import Path

from repro.drill import run_drill_file
from repro.tcp.tcb import TCPConnection

SCRIPTS = Path(__file__).parent / "scripts"


def test_takeover_noop_breaks_liveness_drill(monkeypatch):
    monkeypatch.setattr(TCPConnection, "takeover", lambda self: None)
    result = run_drill_file(SCRIPTS / "t24_sttcp_takeover_liveness.py")
    assert not result.passed
    result = run_drill_file(SCRIPTS / "t25_sttcp_no_duplicate_delivery.py")
    assert not result.passed


def test_isn_rebase_noop_breaks_shadow_drill(monkeypatch):
    # Both rebase sources (tapped primary SYN/ACK, client handshake ACK)
    # must be disabled: with a lossless tap either alone suffices.
    monkeypatch.setattr(
        TCPConnection, "rebase_from_primary_isn", lambda self, isn_abs: None
    )
    monkeypatch.setattr(TCPConnection, "_rebase_isn", lambda self, ack_abs: None)
    result = run_drill_file(SCRIPTS / "t23_sttcp_shadow_convergence.py")
    assert not result.passed


def test_takeover_resending_acked_bytes_breaks_no_duplicate_drill(monkeypatch):
    # A takeover that retransmits from the start of the *stream* instead
    # of the client's cumulative ACK re-delivers acknowledged bytes; the
    # drill's expect_no on seq 1 must catch the duplicate.
    from repro.tcp.constants import FLAG_ACK
    from repro.util.bytespan import PatternBytes

    original = TCPConnection.takeover

    def duplicating(self):
        was_shadow = self.suppress_output and self.flight_size > 0
        original(self)
        if was_shadow:
            self._emit(FLAG_ACK, self.iss + 1, PatternBytes(1460, 0, 7))

    monkeypatch.setattr(TCPConnection, "takeover", duplicating)
    result = run_drill_file(SCRIPTS / "t25_sttcp_no_duplicate_delivery.py")
    assert not result.passed
    assert "seq 1" in result.failure

"""Unit tests for the drill harness itself: pattern matching, sequence
rebasing, the first-mismatch diagnostic, and report rendering."""

import json
from pathlib import Path

import pytest

from repro.drill import ANY, run_drill_file, tcp
from repro.drill.patterns import SegmentSpec, SeqSpace, parse_flags
from repro.drill.report import DrillResult, format_report, results_to_json
from repro.tcp.constants import FLAG_ACK, FLAG_PSH, FLAG_SYN
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import EMPTY, RealBytes

BROKEN = Path(__file__).parent / "broken"


def _segment(flags, seq=0, ack=0, win=65535, payload=EMPTY, mss=None):
    return TCPSegment(8000, 46000, seq, ack, parse_flags(flags), win, payload, mss_option=mss)


class TestParseFlags:
    def test_each_letter(self):
        assert parse_flags("S") == FLAG_SYN
        assert parse_flags("PA") == FLAG_PSH | FLAG_ACK
        assert parse_flags(".") == 0

    def test_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            parse_flags("X")


class TestSeqSpace:
    def test_peer_stream_is_identity(self):
        space = SeqSpace(local_isn=0)
        assert space.abs_local(5) == 5
        assert space.rel_local(5) == 5

    def test_remote_stream_rebases_on_learned_isn(self):
        space = SeqSpace(local_isn=0)
        space.learn_remote(1_000_000)
        assert space.rel_remote(1_000_001) == 1
        assert space.abs_remote(1) == 1_000_001

    def test_rebase_handles_wraparound(self):
        space = SeqSpace(local_isn=0)
        space.learn_remote(0xFFFFFFFF)
        assert space.rel_remote(0) == 1


class TestSegmentSpec:
    def test_flags_compared_as_sets(self):
        space = SeqSpace()
        assert tcp("PA").matches(_segment("PA"), space)
        assert tcp("AP").matches(_segment("PA"), space)
        assert not tcp("A").matches(_segment("PA"), space)

    def test_ack_requires_ack_flag(self):
        space = SeqSpace()
        diffs = tcp("S", ack=1).mismatches(_segment("S"), space)
        assert any("no ACK flag" in str(actual) for _, _, actual in diffs)

    def test_mss_any_requires_option_presence(self):
        space = SeqSpace()
        assert tcp("S", mss=ANY).matches(_segment("S", mss=1460), space)
        assert not tcp("S", mss=ANY).matches(_segment("S"), space)

    def test_payload_bytes_compared(self):
        space = SeqSpace()
        seg = _segment("PA", payload=RealBytes(b"abc"))
        assert tcp("PA", payload=RealBytes(b"abc")).matches(seg, space)
        assert not tcp("PA", payload=RealBytes(b"abd")).matches(seg, space)

    def test_describe_renders_wildcards(self):
        text = tcp("SA", seq=0, ack=1).describe()
        assert "SA" in text and "seq 0" in text and "ack 1" in text and "win *" in text

    def test_spec_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            SegmentSpec(bogus=1)


class TestFirstMismatchDiagnostic:
    def test_broken_script_names_field_expected_actual_and_time(self):
        result = run_drill_file(BROKEN / "b01_wrong_ack.py")
        assert not result.passed
        assert "field ack: expected 2, actual 1" in result.failure
        assert "t=0.100" in result.failure
        assert "recent wire context" in result.failure
        # The closest-candidate line shows the canonical segment format.
        assert "SA 0:0(0) ack 1" in result.failure


class TestReport:
    def test_format_report_and_json(self):
        results = [
            DrillResult("a", True, 3, 1, 2, 0.5, None),
            DrillResult("b", False, 1, 0, 1, 0.25, "boom"),
        ]
        table = format_report(results)
        assert "1/2 scripts passed" in table
        assert "PASS" in table and "FAIL" in table
        payload = results_to_json(results)
        assert json.dumps(payload)  # JSON-serialisable as-is
        assert payload[1]["failure"] == "boom"
        assert payload[0]["passed"] is True

# The Linux 200 ms RTO floor: a near-zero RTT sample would drive the
# computed RTO to ~0, but retransmissions still pace at 0.2s, 0.4s, 0.8s.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
# A fast ACKed exchange leaves srtt ~ a few microseconds.
sock_write(0.5, 100)
expect(0.5, tcp("PA", seq=1, ack=1, length=100))
inject(0.501, tcp("A", seq=1, ack=101))
# Second write never ACKed: backoff starts from the clamped 200 ms floor.
sock_write(1.0, 100)
expect(1.0, tcp("PA", seq=101, length=100))
expect(1.2, tcp("A", seq=101, length=100))
expect(1.6, tcp("A", seq=101, length=100))
expect(2.4, tcp("A", seq=101, length=100))

# Out-of-order arrival: a gapped segment is ACKed immediately (duplicate
# ACK for the expected sequence); filling the hole ACKs the whole run and
# delivers the reassembled bytes.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
# Segment 2 arrives first: immediate dup-ACK for seq 1, no delack wait.
inject(1.0, tcp("A", seq=1461, ack=1, length=1460, payload=pattern(1460, 1460)))
expect(1.0, tcp("A", ack=1))
# The hole fills: cumulative ACK jumps over both segments at once.
inject(1.1, tcp("A", seq=1, ack=1, length=1460, payload=pattern(1460)))
expect(1.1, tcp("A", ack=2921))

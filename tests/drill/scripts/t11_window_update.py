# Receive-window accounting: an unread stream shrinks the advertised
# window to zero; an application read opens it again with a window update.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
# Fill the 16 KiB receive buffer: 11 x 1460 + 324 = 16384 unread bytes.
inject(1.000, tcp("A", seq=1, ack=1, length=1460, payload=pattern(1460)))
inject(1.001, tcp("A", seq=1461, ack=1, length=1460, payload=pattern(1460, 1460)))
inject(1.002, tcp("A", seq=2921, ack=1, length=1460, payload=pattern(1460, 2920)))
inject(1.003, tcp("A", seq=4381, ack=1, length=1460, payload=pattern(1460, 4380)))
inject(1.004, tcp("A", seq=5841, ack=1, length=1460, payload=pattern(1460, 5840)))
inject(1.005, tcp("A", seq=7301, ack=1, length=1460, payload=pattern(1460, 7300)))
inject(1.006, tcp("A", seq=8761, ack=1, length=1460, payload=pattern(1460, 8760)))
inject(1.007, tcp("A", seq=10221, ack=1, length=1460, payload=pattern(1460, 10220)))
inject(1.008, tcp("A", seq=11681, ack=1, length=1460, payload=pattern(1460, 11680)))
inject(1.009, tcp("A", seq=13141, ack=1, length=1460, payload=pattern(1460, 13140)))
inject(1.010, tcp("A", seq=14601, ack=1, length=1460, payload=pattern(1460, 14600)))
inject(1.011, tcp("A", seq=16061, ack=1, length=324, payload=pattern(324, 16060)))
expect(1.003, tcp("A", ack=2921, win=13464))
expect(1.011, tcp("A", ack=16385, win=0))
# Reading drains the buffer: a window update reopens the full 16 KiB.
sock_read(2.0, 16384)
expect(2.0, tcp("A", ack=16385, win=16384))

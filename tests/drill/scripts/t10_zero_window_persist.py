# Zero-window probing: when the peer closes its window the sender arms the
# persist timer and probes with 1 byte at 0.5s, then 1s, 2s (doubling);
# reopening the window resumes the stream.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=4096, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1, win=4096))
sock_write(0.5, 8192)
# The 4096-byte send window fills: 1460 + 1460 + 1176.
expect(0.5, tcp("A", seq=1, length=1460))
expect(0.5, tcp("A", seq=1461, length=1460))
expect(0.5, tcp("A", seq=2921, length=1176))
# ACK everything but slam the window shut.
inject(0.6, tcp("A", seq=1, ack=4097, win=0))
expect_no(0.61, 1.09, tcp(ANY, seq=4097))
# Each probe carries the next pending byte of the stream.
expect(1.1, tcp("A", seq=4097, length=1))      # persist probe (0.5s)
expect(2.1, tcp("A", seq=4098, length=1))      # interval doubled to 1s
expect(4.1, tcp("A", seq=4099, length=1))      # interval doubled to 2s
# Window reopens (ACKing the probe bytes): the stream resumes at once.
inject(4.2, tcp("A", seq=1, ack=4100, win=8192))
expect(4.2, tcp("A", seq=4100, length=1460))
expect(4.2, tcp("A", seq=5560, length=1460))
expect(4.2, tcp("PA", seq=7020, length=1173))

# ST-TCP takeover liveness (paper §5): after the primary crashes the
# backup detects the missed heartbeats, STONITHs the primary, lifts
# output suppression, and serves new requests on the *same* connection —
# no RST, no new handshake.
use(mode="sttcp")

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.102, tcp("A", seq=1, ack=1))
inject(0.110, tcp("PA", seq=1, ack=1, length=150, payload=app_request("echo", request_id=1)))
expect(0.110, tcp("PA", seq=1, ack=151, length=150))
inject(0.150, tcp("A", seq=151, ack=151))

fault(0.300, "primary_crash")
expect_takeover(0.700)
# With nothing in flight the takeover announces itself with a pure ACK
# in the primary's sequence space (detection ~3 heartbeats + STONITH).
expect(0.520, tcp("A", seq=151, ack=151), tol=0.200)
# The failed-over server answers a fresh request seamlessly.
inject(0.800, tcp("PA", seq=151, ack=151, length=150, payload=app_request("echo", request_id=2)))
expect(0.800, tcp("PA", seq=151, ack=301, length=150))
# The client must never see the connection torn down.
expect_no(0.000, 0.900, tcp("R"))

# RST teardown: an in-window RST kills the connection without handshake;
# data sent afterwards hits no TCB and draws a RST at the ACKed sequence.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
expect_state(0.5, "ESTABLISHED")
inject(1.0, tcp("R", seq=1))
expect_state(1.1, "CLOSED")
# Late data on the dead connection: the layer answers RST (no ACK flag,
# seq taken from the incoming segment's own ACK field).
inject(1.2, tcp("A", seq=1, ack=1, length=100, payload=pattern(100)))
expect(1.2, tcp("R", seq=1, win=0))

# ST-TCP no-duplicate-delivery (paper §5): the backup resumes the send
# stream exactly at the client's cumulative ACK.  Bytes the client
# already acknowledged before the crash are never retransmitted, and
# go-back-N walks the remainder as ACKs return.
use(mode="sttcp")

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.102, tcp("A", seq=1, ack=1))
# A 3000-byte DATA response: three segments inside the initial cwnd.
inject(0.110, tcp("PA", seq=1, ack=1, length=150, payload=app_request("data", size=3000, request_id=1)))
expect(0.110, tcp("A", seq=1, ack=151, length=1460))
expect(0.110, tcp("A", seq=1461, ack=151, length=1460))
expect(0.110, tcp("PA", seq=2921, ack=151, length=80))
# The client acknowledges only the first segment before the crash.
inject(0.130, tcp("A", seq=151, ack=1461))

fault(0.300, "primary_crash")
expect_takeover(0.700)
# Takeover retransmits the head of the *unacknowledged* region: byte
# 1461, not byte 1 — the acknowledged prefix is never re-sent.
expect(0.520, tcp("A", seq=1461, ack=151, length=1460), tol=0.200)
expect_no(0.140, 1.100, tcp(ANY, seq=1, length=1460))
# Go-back-N: each returning ACK releases the next hole.
inject(0.900, tcp("A", seq=151, ack=2921))
expect(0.900, tcp("A", seq=2921, ack=151, length=80))
inject(0.950, tcp("A", seq=151, ack=3001))
# And at no point does the client see a reset.
expect_no(0.000, 1.000, tcp("R"))

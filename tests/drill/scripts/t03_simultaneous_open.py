# Simultaneous open (RFC 793 fig. 8): both SYNs cross; the host answers
# the peer's bare SYN with SYN/ACK from SYN_SENT and a pure ACK completes.
use(mode="client")

sock_connect(0.0)
expect(0.0, tcp("S", seq=0, mss=ANY))
inject(0.001, tcp("S", seq=0, win=65535, mss=1460))
expect(0.001, tcp("SA", seq=0, ack=1))
inject(0.003, tcp("A", seq=1, ack=1))
expect_state(0.050, "ESTABLISHED")

# The 120s RTO ceiling: doubling stops at RTO_MAX, so late retransmission
# intervals pin at exactly 120s (1,2,4,...,64 then 120,120).
use(mode="server", tol=0.010, run_for=0.5)

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
sock_write(1.0, 200)
expect(1.0, tcp("PA", seq=1, ack=1, length=200))
expect(2.0, tcp("A", seq=1, length=200))     # +1s
expect(4.0, tcp("A", seq=1, length=200))     # +2s
expect(8.0, tcp("A", seq=1, length=200))     # +4s
expect(16.0, tcp("A", seq=1, length=200))    # +8s
expect(32.0, tcp("A", seq=1, length=200))    # +16s
expect(64.0, tcp("A", seq=1, length=200))    # +32s
expect(128.0, tcp("A", seq=1, length=200))   # +64s
expect(248.0, tcp("A", seq=1, length=200))   # +120s (capped)
expect(368.0, tcp("A", seq=1, length=200))   # +120s (still capped)

# Fence storm: two primaries crash in the same instant, two backups
# suspect at the same heartbeat tick, and both fence through the ONE
# cluster arbiter — which must serialize the cuts and still land both
# takeovers, the cascaded elections, and every client's byte stream.
use(
    mode="cluster",
    cluster={
        "name": "t29",
        "primaries": 3,
        "backups": 3,
        "capacity": 3,
        "workload": {"exchanges": 80, "service_time": 0.005},
        "deadline": 5.0,
    },
)

fault(0.250, "cluster_crash", service="s0")
fault(0.250, "cluster_crash", service="s1")


def both_fenced(env):
    run = env.cluster
    arbiter = run.fabric.arbiter
    assert arbiter.fence_requests == 2, f"{arbiter.fence_requests} fence requests"
    assert arbiter.cuts_performed == 2, f"{arbiter.cuts_performed} cuts performed"
    for service in ("s0", "s1"):
        assert service in run.coordinator.takeover_engines, f"{service} never taken over"


probe(1.000, both_fenced, label="serialized arbiter landed both takeovers")


def reshadowed(env):
    # The storm cascades: s0's first replacement may itself be consumed
    # by s1's takeover an actuation later, so judge only the *final*
    # election per service — it must have a live, synced backup.
    report = env.cluster.coordinator.report
    for service in ("s0", "s1"):
        record = [r for r in report.records if r.service == service][-1]
        assert record.new_backup is not None, f"{service}: pool exhausted"
        assert record.sync_done_at is not None, f"{service}: shadow never synced"


probe(1.600, reshadowed, label="final replacements synced")


def verified(env):
    run = env.cluster
    assert len(run.results) == 3, f"clients still running, done: {sorted(run.results)}"
    for name, result in sorted(run.results.items()):
        assert result.verified and result.error is None, f"{name}: {result.error}"
    assert not run.monitor.violations, f"dual primary: {run.monitor.violations[:3]}"


probe(1.800, verified, label="all three byte streams exactly-once")

# Three-way handshake: SYN -> SYN/ACK -> ACK establishes the connection.
use(mode="server")

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.105, tcp("A", seq=1, ack=1))
expect_state(0.150, "ESTABLISHED")

# Half-close: after the peer's FIN (CLOSE_WAIT) the local side keeps
# writing; its own close then completes the exchange through LAST_ACK.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
inject(1.0, tcp("FA", seq=1, ack=1))
expect(1.0, tcp("A", seq=1, ack=2))
expect_state(1.05, "CLOSE_WAIT")
# The receive direction is closed; the send direction still works.
sock_write(1.1, 500)
expect(1.1, tcp("PA", seq=1, ack=2, length=500))
inject(1.2, tcp("A", seq=2, ack=501))
sock_close(1.3)
expect(1.3, tcp("FA", seq=501, ack=2))
inject(1.4, tcp("A", seq=2, ack=502))
expect_state(1.5, "CLOSED")

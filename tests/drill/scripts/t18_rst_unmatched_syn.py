# RFC 793 §3.4: a SYN to a port nobody listens on is answered with
# RST/ACK (seq 0, ack = SYN.seq + 1).
use(mode="server")

inject(0.1, tcp("S", seq=0, win=65535, dport=9999))
expect(0.1, tcp("RA", seq=0, ack=1, win=0, sport=9999))
# The listener port still answers normally afterwards.
inject(0.2, tcp("S", seq=0, win=65535, mss=1460))
expect(0.2, tcp("SA", seq=0, ack=1))

# Challenge-ACK rate limiting (RFC 5961 §5): out-of-window segments are
# answered with at most 5 challenge ACKs per 100 ms window.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
# Eight stale segments (seq 0 sits below rcv_nxt=1) in one 100 ms window.
inject(1.000, tcp("A", seq=0, ack=1))
inject(1.002, tcp("A", seq=0, ack=1))
inject(1.004, tcp("A", seq=0, ack=1))
inject(1.006, tcp("A", seq=0, ack=1))
inject(1.008, tcp("A", seq=0, ack=1))
inject(1.010, tcp("A", seq=0, ack=1))
inject(1.012, tcp("A", seq=0, ack=1))
inject(1.014, tcp("A", seq=0, ack=1))
expect(1.000, tcp("A", seq=1, ack=1))
expect(1.002, tcp("A", seq=1, ack=1))
expect(1.004, tcp("A", seq=1, ack=1))
expect(1.006, tcp("A", seq=1, ack=1))
expect(1.008, tcp("A", seq=1, ack=1))
# The budget (5 per 100 ms) is spent: 6th..8th go unanswered.
expect_no(1.0095, 1.099, tcp("A"))
# A fresh window earns a fresh budget.
inject(1.150, tcp("A", seq=0, ack=1))
expect(1.150, tcp("A", seq=1, ack=1))

# Active close and TIME_WAIT: our FIN -> FIN_WAIT_2 -> peer FIN -> ACK ->
# TIME_WAIT holding for the 2MSL period; a retransmitted peer FIN (now
# below the window) draws a challenge ACK; then the timer closes the TCB.
use(mode="client")

sock_connect(0.0)
expect(0.0, tcp("S", seq=0, mss=ANY))
inject(0.002, tcp("SA", seq=0, ack=1, win=65535, mss=1460))
expect(0.002, tcp("A", seq=1, ack=1))
sock_close(1.0)
expect(1.0, tcp("FA", seq=1, ack=1))
inject(1.1, tcp("A", seq=1, ack=2))
expect_state(1.15, "FIN_WAIT_2")
inject(1.2, tcp("FA", seq=1, ack=2))
expect(1.2, tcp("A", seq=2, ack=2))
expect_state(1.3, "TIME_WAIT")
# A duplicate FIN sits left of the window now: challenge-ACKed.
inject(1.5, tcp("FA", seq=1, ack=2))
expect(1.5, tcp("A", seq=2, ack=2))
# TIME_WAIT expires (1s after the restart at 1.5) and the TCB is gone.
expect_state(2.6, "CLOSED")

# Active open: SYN retransmits back off 1s -> 2s -> 4s (RFC 6298 doubling
# from the 1s initial RTO), then the late SYN/ACK still completes.
use(mode="client")

sock_connect(0.0)
expect(0.0, tcp("S", seq=0, mss=ANY))
expect(1.0, tcp("S", seq=0, mss=ANY))
expect(3.0, tcp("S", seq=0, mss=ANY))
expect(7.0, tcp("S", seq=0, mss=ANY))
inject(7.2, tcp("SA", seq=0, ack=1, win=65535, mss=1460))
expect(7.2, tcp("A", seq=1, ack=1))
expect_state(7.5, "ESTABLISHED")

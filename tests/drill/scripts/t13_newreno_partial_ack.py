# NewReno partial ACK: during fast recovery an ACK that advances but does
# not reach the recovery point retransmits the next hole immediately.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
sock_write(0.5, 7300)
expect(0.5, tcp("A", seq=1, length=1460))
expect(0.5, tcp("A", seq=1461, length=1460))
expect(0.5, tcp("A", seq=2921, length=1460))
inject(0.510, tcp("A", seq=1, ack=1))
inject(0.520, tcp("A", seq=1, ack=1))
inject(0.530, tcp("A", seq=1, ack=1))
expect(0.530, tcp("A", seq=1, length=1460))            # fast retransmit
# Partial ACK (covers segment 1 only; recovery point is 4381).
inject(0.6, tcp("A", seq=1, ack=1461))
expect(0.6, tcp("A", seq=1461, length=1460))           # immediate, no RTO wait
# Window deflation + one MSS also releases the tail of the write.
expect(0.6, tcp("A", seq=4381, length=1460))
expect(0.6, tcp("PA", seq=5841, length=1460))
# Full ACK: everything is delivered, nothing left to send.
inject(0.7, tcp("A", seq=1, ack=7301))
expect_no(0.705, 0.750, tcp(ANY, length=1460))

# Delayed ACK: a single full segment is not ACKed immediately; the ACK
# rides the 40 ms delack timer.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
inject(1.0, tcp("A", seq=1, ack=1, length=1460, payload=pattern(1460)))
expect_no(1.001, 1.035, tcp("A", ack=1461))
expect(1.040, tcp("A", seq=1, ack=1461), tol=0.006)

# Passive open with a silent client: the SYN/ACK retransmits on the RTO
# backoff schedule (1s, 2s); a duplicate SYN is answered immediately with
# an ACK (the duplicate falls below the receive window -> challenge ACK).
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
expect(1.0, tcp("SA", seq=0, ack=1))
expect(3.0, tcp("SA", seq=0, ack=1))
inject(5.0, tcp("S", seq=0, win=65535, mss=1460))
expect(5.0, tcp("A", seq=1, ack=1))
expect(7.0, tcp("SA", seq=0, ack=1))

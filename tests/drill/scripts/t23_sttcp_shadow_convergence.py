# ST-TCP shadow convergence (paper §4): the backup taps the primary's
# wire traffic and builds a byte-exact, output-suppressed replica of the
# connection — ISN rebased onto the primary's, both stream positions
# tracking the live connection.
use(mode="sttcp")

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.102, tcp("A", seq=1, ack=1))
# One echo request: the primary answers; the backup's shadow server
# produces the identical (suppressed) response.
inject(0.110, tcp("PA", seq=1, ack=1, length=150, payload=app_request("echo", request_id=1)))
expect(0.110, tcp("PA", seq=1, ack=151, length=150))
inject(0.150, tcp("A", seq=151, ack=151))
expect_shadow(
    0.250,
    established=True,
    isn_rebased=True,
    rcv_nxt=151,
    snd_nxt=151,
    suppressed=True,
)

# RFC 6298 exponential backoff: with no RTT sample the first data RTO is
# 1s and doubles on every expiry.  Retransmissions carry no PSH.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
sock_write(1.0, 600)
expect(1.0, tcp("PA", seq=1, ack=1, length=600))
expect(2.0, tcp("A", seq=1, length=600))
expect(4.0, tcp("A", seq=1, length=600))
expect(8.0, tcp("A", seq=1, length=600))

# NewReno fast retransmit: the third duplicate ACK triggers an immediate
# retransmission of the lost head segment, well before the RTO.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
sock_write(0.5, 7300)
# The 4380-byte initial window (RFC 3390) lets exactly 3 segments out.
expect(0.5, tcp("A", seq=1, length=1460))
expect(0.5, tcp("A", seq=1461, length=1460))
expect(0.5, tcp("A", seq=2921, length=1460))
# The peer pretends the first segment was lost: three duplicate ACKs.
inject(0.510, tcp("A", seq=1, ack=1))
inject(0.520, tcp("A", seq=1, ack=1))
expect_no(0.505, 0.529, tcp(ANY, seq=1, length=1460))  # not before dupack #3
inject(0.530, tcp("A", seq=1, ack=1))
expect(0.530, tcp("A", seq=1, length=1460))            # fast retransmit
# A full ACK ends recovery and releases the rest of the write.
inject(0.6, tcp("A", seq=1, ack=4381))
expect(0.6, tcp("A", seq=4381, length=1460))
expect(0.6, tcp("PA", seq=5841, length=1460))

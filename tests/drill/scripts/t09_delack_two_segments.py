# Delayed-ACK segment threshold: a second full segment forces the ACK out
# immediately (no 40 ms wait), RFC 1122's ack-every-second-segment rule.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
inject(1.000, tcp("A", seq=1, ack=1, length=1460, payload=pattern(1460)))
inject(1.001, tcp("A", seq=1461, ack=1, length=1460, payload=pattern(1460, 1460)))
expect(1.001, tcp("A", seq=1, ack=2921))
# The delack timer must not fire a second, duplicate ACK afterwards.
expect_no(1.010, 1.080, tcp("A", ack=2921))

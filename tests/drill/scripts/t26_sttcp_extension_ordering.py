# Extension hook ordering across a failover: the output-suppressing
# shadow extension is attached first and the observability trace probe
# stacks behind it, so while the backup shadows the connection the
# shadow's veto short-circuits the transmit chain and the probe never
# sees a transmission.  After takeover the suppression lifts, the
# one-shot first-ACK probe rides along, and the probe starts counting
# real sends.
use(mode="sttcp", obs_probe=True)

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.102, tcp("A", seq=1, ack=1))
inject(0.110, tcp("PA", seq=1, ack=1, length=150, payload=app_request("echo", request_id=1)))
expect(0.110, tcp("PA", seq=1, ack=151, length=150))
inject(0.150, tcp("A", seq=151, ack=151))

# Suppressor first, observer second — the contractual dispatch order.
expect_extensions(0.200, "sttcp.shadow", "obs.trace_probe")
expect_shadow(0.200, established=True, suppressed=True)
# The probe has seen inbound traffic, but no transmit attempt may have
# reached it: every shadow send was vetoed one link earlier.
expect_probe_counts(0.200, on_segment_in=2, filter_transmit=0)

fault(0.300, "primary_crash")
expect_takeover(0.700)
# Takeover announces itself with a pure ACK — the first transmission
# that clears the (now permissive) filter chain.
expect(0.520, tcp("A", seq=151, ack=151), tol=0.200)
# The takeover appended the one-shot first-ACK checkpoint probe.
expect_extensions(0.750, "sttcp.shadow", "obs.trace_probe", "obs.first_ack")
expect_probe_counts(0.750, filter_transmit=1)
# The first client segment after takeover unhooks the one-shot probe.
inject(0.800, tcp("A", seq=151, ack=151))
expect_extensions(0.900, "sttcp.shadow", "obs.trace_probe")
# The client never sees the connection torn down.
expect_no(0.000, 0.950, tcp("R"))

# Passive close: the peer's FIN is ACKed at once (CLOSE_WAIT); the local
# close sends our FIN (LAST_ACK) and its ACK finishes the connection.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
inject(1.0, tcp("FA", seq=1, ack=1))
expect(1.0, tcp("A", seq=1, ack=2))
expect_state(1.05, "CLOSE_WAIT")
sock_close(1.1)
expect(1.1, tcp("FA", seq=1, ack=2))
expect_state(1.15, "LAST_ACK")
inject(1.2, tcp("A", seq=2, ack=2))
expect_state(1.3, "CLOSED")

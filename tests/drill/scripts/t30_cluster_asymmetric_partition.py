# Asymmetric partition, the classic dual-primary recipe: s0's primary
# stays alive and keeps serving, but its outbound UDP-channel frames
# (heartbeats included) are dropped, so the backup sees a dead primary.
# The arbiter must fence the LIVE primary before the takeover goes
# active — at no simulated instant may two live hosts own the service.
# tests/cluster/test_mutation.py reruns this drill with a sabotaged
# arbiter and asserts it FAILS, proving the invariant check has teeth.
use(
    mode="cluster",
    cluster={
        "name": "t30",
        "primaries": 2,
        "backups": 2,
        "capacity": 2,
        "workload": {"exchanges": 80, "service_time": 0.005},
        "deadline": 5.0,
    },
)

fault(0.250, "cluster_partition_oneway", service="s0")


def fenced_alive_primary(env):
    run = env.cluster
    original = run.fabric.services[0].primary
    assert not original.is_up, "the partitioned (live) primary was never fenced"
    assert run.fabric.arbiter.cuts_performed == 1, "no fence actuated"
    assert "s0" in run.coordinator.takeover_engines, "s0 never taken over"
    owner = run.fabric.service_by_name["s0"].primary_host.name
    assert owner == "pool0", f"s0 should be owned by pool0, not {owner}"


probe(0.800, fenced_alive_primary, label="STONITH killed the live primary")


def never_dual(env):
    run = env.cluster
    assert run.monitor.polls > 0, "dual-primary monitor never polled"
    assert not run.monitor.violations, (
        f"dual primary observed: {run.monitor.violations[:3]}"
    )


probe(1.000, never_dual, label="no dual-primary at any instant")


def verified(env):
    run = env.cluster
    assert len(run.results) == 2, f"clients still running, done: {sorted(run.results)}"
    for name, result in sorted(run.results.items()):
        assert result.verified and result.error is None, f"{name}: {result.error}"
    assert not run.monitor.violations, f"dual primary: {run.monitor.violations[:3]}"


probe(1.500, verified, label="streams exactly-once despite partition")

# Cluster backup-pool promotion: when a primary crashes, its pool
# backup takes over the service, the election coordinator promotes the
# consumed pool host to full primary, and a replacement backup from the
# pool re-establishes shadowing via the snapshot handoff — while the
# healthy pair's client never notices.
use(
    mode="cluster",
    cluster={
        "name": "t28",
        "primaries": 2,
        "backups": 2,
        "capacity": 2,
        "workload": {"exchanges": 80, "service_time": 0.005},
        "deadline": 5.0,
    },
)

fault(0.250, "cluster_crash", service="s0")


def promoted(env):
    run = env.cluster
    record = run.coordinator.report.for_service("s0")
    assert record is not None, "no election ran for s0"
    assert record.kind == "takeover", f"expected takeover election, got {record.kind}"
    assert record.consumed_backup == "pool0", f"wrong consumed backup: {record}"
    assert record.new_backup == "pool1", f"wrong replacement: {record.new_backup}"
    owner = run.fabric.service_by_name["s0"].primary_host.name
    assert owner == "pool0", f"s0 should be owned by the promoted pool0, not {owner}"
    assert "pool0" in run.pool.consumed, "pool0 not marked consumed"
    assert run.fabric.arbiter.cuts_performed == 1, "takeover without a fence"


probe(0.700, promoted, label="pool host promoted, replacement elected")


def converged(env):
    record = env.cluster.coordinator.report.for_service("s0")
    assert record.sync_done_at is not None, "replacement shadow never synced"


probe(1.000, converged, label="replacement shadow converged")


def verified(env):
    run = env.cluster
    assert len(run.results) == 2, f"clients still running, done: {sorted(run.results)}"
    for name, result in sorted(run.results.items()):
        assert result.verified and result.error is None, f"{name}: {result.error}"
    assert not run.monitor.violations, f"dual primary: {run.monitor.violations[:3]}"


probe(1.500, verified, label="both byte streams exactly-once")

# A handshake completed by an ACK carrying data (common client shortcut):
# the connection establishes and the 150 payload bytes ride the delack.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=1460))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("PA", seq=1, ack=1, length=150, payload=pattern(150)))
expect_state(0.02, "ESTABLISHED")
expect(0.042, tcp("A", seq=1, ack=151), tol=0.006)

# Vanilla-stack extension dispatch: a pure observer attached to a plain
# server connection sees every hook family fire — inbound segments, ACK
# processing, state transitions, and the transmit filter — while the
# wire timeline stays identical to the probe-free handshake drills.
use(mode="server", obs_probe=True)

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=1, mss=ANY))
inject(0.102, tcp("A", seq=1, ack=1))
expect_state(0.150, "ESTABLISHED")
expect_extensions(0.150, "obs.trace_probe")
# Handshake alone already exercised the chains: segments in, one ACK
# processed, the SYN/ACK cleared the (empty-veto) transmit filter, and
# the connection reached ESTABLISHED under the probe's eyes.
expect_probe_counts(0.150, on_segment_in=1, on_ack=1, filter_transmit=1, on_state_change=1)

# One round trip each way: peer data in, local write out, final ACK in.
inject(0.200, tcp("PA", seq=1, ack=1, length=500, payload=pattern(500)))
expect(0.200, tcp("A", seq=1, ack=501), tol=0.060)
sock_write(0.300, 500)
expect(0.300, tcp("PA", seq=1, ack=501, length=500))
inject(0.350, tcp("A", seq=501, ack=501))
# The exchange added at least one more of each hook family.
expect_probe_counts(0.400, on_segment_in=3, on_ack=2, filter_transmit=2)
# A pure observer never perturbs the run.
expect_no(0.000, 0.450, tcp("R"))

# MSS negotiation: the SYN's 536-byte MSS option clamps every data
# segment the server sends, regardless of its configured 1460.
use(mode="server")

inject(0.0, tcp("S", seq=0, win=65535, mss=536))
expect(0.0, tcp("SA", seq=0, ack=1))
inject(0.002, tcp("A", seq=1, ack=1))
sock_write(0.5, 1600)
expect(0.5, tcp("A", seq=1, length=536))
expect(0.5, tcp("A", seq=537, length=536))
expect(0.5, tcp("PA", seq=1073, length=528))
expect_no(0.4, 0.7, tcp(ANY, length=1460))

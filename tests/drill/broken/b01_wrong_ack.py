# Deliberately broken drill (kept OUT of tests/drill/scripts/): the
# SYN/ACK must acknowledge sequence 1, not 2.  This script exists to
# exercise — and pin down in tests — the first-mismatch diagnostic:
# field name, expected vs actual value, and the expectation time.
use(mode="server")

inject(0.100, tcp("S", seq=0, win=65535, mss=1460))
expect(0.100, tcp("SA", seq=0, ack=2, mss=ANY))

"""Multi-backup ST-TCP tests (§3: "one or more backup servers"):
ranked takeover, promotion, cascading failover, min-ack retention."""

import pytest

from repro.apps.workload import bulk_workload, echo_workload, upload_workload
from repro.harness.calibrate import FAST_LAN
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sttcp.backup import ROLE_ACTIVE, ROLE_PASSIVE
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


def make_group(backups=2, seed=120, **config_kwargs):
    config = STTCPConfig(hb_interval=0.05, takeover_grace=0.1, **config_kwargs)
    return Scenario(profile=FAST_LAN, sttcp=config, backups=backups, seed=seed)


def test_failure_free_run_with_two_backups():
    scenario = make_group()
    run = run_workload(upload_workload(128 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    # Both backups shadowed the connection and acked.
    for engine in scenario.pair.backup_engines:
        assert len(engine.shadow_connections) == 1
        assert engine.acks_sent > 0
    assert not scenario.pair.failed_over


def test_two_backups_cost_matches_one_backup():
    """Adding a backup must not slow the client (it only taps)."""
    one = run_workload(
        echo_workload(30), scenario=make_scenario(seed=121), deadline=120.0
    ).require_clean()
    two = run_workload(
        echo_workload(30), scenario=make_group(seed=121), deadline=120.0
    ).require_clean()
    assert two.total_time == pytest.approx(one.total_time, rel=0.02)


def test_retention_waits_for_slowest_backup():
    """A byte is only discarded when every live backup acked it (min)."""
    scenario = make_group(sync_time=10.0, ack_threshold_fraction=0.25)
    # Slow the second backup's tap so its acks trail the first backup's.
    scenario.extra_backups[0].nics[0].processing_delay = 0.0004
    run = run_workload(upload_workload(128 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None
    state = list(scenario.pair.primary_engine._connections.values())[0]
    acked = state.acked_by
    fast = scenario.backup.interfaces[0].ip.value
    slow = scenario.extra_backups[0].interfaces[0].ip.value
    assert acked.get(fast, 0) > acked.get(slow, 0)
    # Retained floor equals the slow backup's ack point.
    assert state.retention.lowest_retained_offset <= acked.get(fast, 0)


def test_rank0_takes_over_and_rank1_adopts():
    scenario = make_group()
    run = run_workload(
        bulk_workload(256 * KB), scenario=scenario, crash_at=0.11, deadline=300.0
    )
    assert run.result.error is None and run.result.verified
    rank0, rank1 = scenario.pair.backup_engines
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert rank0.role is ROLE_ACTIVE
    assert rank0.promoted_primary is not None
    # Rank 1 stood down and now shadows the new primary.
    assert rank1.role is ROLE_PASSIVE
    assert rank1.primary_ip == scenario.backup.interfaces[0].ip


def test_promoted_primary_keeps_fault_tolerance():
    """After the first failover the service is *still* fault-tolerant:
    the new primary retains bytes for the remaining backup."""
    scenario = make_group()
    run = run_workload(
        upload_workload(256 * KB), scenario=scenario, crash_at=0.11, deadline=300.0
    )
    assert run.result.error is None and run.result.verified
    scenario.sim.run(until=scenario.sim.now + 1.0)
    promoted = scenario.pair.backup_engines[0].promoted_primary
    assert promoted is not None
    assert promoted.fault_tolerant
    assert promoted.acks_received > 0  # rank 1 acks the new primary


def test_cascading_failover_two_crashes():
    """Primary dies, rank 0 takes over; then rank 0 dies too and rank 1
    carries the same client connection to completion."""
    scenario = make_group(seed=122)
    scenario.start_service()
    # A run long enough (~1.6 s) that both crashes land mid-stream.
    from repro.apps.client import run_client

    process = None

    def launch():
        nonlocal process
        process = run_client(
            scenario.client, scenario.service_addr, echo_workload(10000)
        )

    scenario.sim.schedule_at(0.1, launch)
    scenario.crash_injector.crash_at(scenario.primary, 0.15)
    scenario.crash_injector.crash_at(scenario.backup, 1.2)  # after takeover
    scenario.sim.run(until=0.1)
    result = scenario.sim.run_until_complete(process, deadline=300.0)
    assert result.error is None
    assert result.verified
    assert result.exchanges_done == 10000
    rank1 = scenario.pair.backup_engines[1]
    assert rank1.role is ROLE_ACTIVE
    assert scenario.pair.active_host is scenario.extra_backups[0]
    assert not scenario.primary.is_up and not scenario.backup.is_up


def test_simultaneous_primary_and_rank0_crash():
    """If rank 0 dies with the primary, rank 1's deferred takeover fires
    after its grace period and serves the client."""
    scenario = make_group(seed=123)
    scenario.crash_injector.crash_at(scenario.backup, 0.119)
    run = run_workload(
        bulk_workload(256 * KB), scenario=scenario, crash_at=0.12, deadline=300.0
    )
    assert run.result.error is None and run.result.verified
    rank1 = scenario.pair.backup_engines[1]
    assert rank1.role is ROLE_ACTIVE
    # Rank 1 waited at least its grace period beyond detection.
    assert rank1.takeover_time - rank1.detection_time >= scenario.pair.config.takeover_grace


def test_three_replica_group():
    scenario = make_group(backups=3, seed=124)
    run = run_workload(
        bulk_workload(128 * KB), scenario=scenario, crash_at=0.11, deadline=300.0
    )
    assert run.result.error is None and run.result.verified
    assert len(scenario.pair.backup_engines) == 3
    assert scenario.pair.failed_over


def test_group_validates_configuration():
    from repro.errors import ConfigurationError
    from repro.sttcp.group import STTCPServerGroup
    from repro.harness.scenario import SERVICE_IP, SERVICE_PORT

    scenario = make_group()
    with pytest.raises(ConfigurationError):
        STTCPServerGroup(scenario.primary, [], SERVICE_IP, SERVICE_PORT)
    with pytest.raises(ConfigurationError):
        Scenario(sttcp=STTCPConfig(), backups=5)


def test_switched_topology_group_failover():
    """Multi-backup also works behind a switch: SME/GME multicast groups
    deliver both directions to every backup."""
    config = STTCPConfig(hb_interval=0.05, takeover_grace=0.1)
    scenario = Scenario(
        profile=FAST_LAN, topology="switched", sttcp=config, backups=2, seed=125
    )
    run = run_workload(
        bulk_workload(256 * KB), scenario=scenario, crash_at=0.12, deadline=300.0
    )
    assert run.result.error is None and run.result.verified
    assert scenario.pair.failed_over
    scenario.sim.run(until=scenario.sim.now + 1.0)
    rank0, rank1 = scenario.pair.backup_engines
    assert rank0.role is ROLE_ACTIVE
    assert rank1.role is ROLE_PASSIVE  # adopted the new primary

"""Engine-level lifecycle under churn: per-connection state is reaped.

The historical leak: backup shadows and primary retention records lived
in engine dicts that only ever grew — N short-lived connections left N
dead entries.  These tests churn real connections through a full
scenario and assert the dicts (and the TCP tables beneath them) shrink
back to zero once TIME_WAIT drains."""

from __future__ import annotations

from repro.apps.protocol import KIND_DATA, encode_request, verify_response

from tests.sttcp.conftest import SERVICE, make_scenario

#: TIME_WAIT is 1 s in the simulator; this drains it with margin.
TIME_WAIT_DRAIN = 2.5


def test_churned_shadows_and_retention_states_are_reaped():
    scenario = make_scenario(seed=91)
    sim = scenario.sim
    scenario.start_service()
    client = scenario.client
    backup = scenario.pair.backup_engine
    primary = scenario.pair.primary_engine
    churn = 12
    verified = []

    def session(request_id):
        sock = client.tcp.connect(SERVICE)
        yield sock.wait_connected()
        yield sock.send(encode_request(KIND_DATA, 256, request_id))
        chunk = yield sock.recv_exactly(256)
        verified.append(verify_response(chunk, 0))
        sock.close()

    sim.run(until=0.05)
    for request_id in range(churn):
        process = client.spawn(session(request_id), f"session-{request_id}")
        sim.run_until_complete(process, deadline=sim.now + 30.0)
    assert verified == [True] * churn
    assert backup.shadows_reaped + backup.shadow_count == churn

    sim.run(until=sim.now + TIME_WAIT_DRAIN)

    # Engine dicts shrank back to empty...
    assert backup.shadow_count == 0
    assert backup.shadows_reaped == churn
    assert primary.retained_connection_count == 0
    assert primary.retention_states_reaped == churn
    # ...the index views carry no leftovers...
    sizes = backup.index_sizes()
    assert sizes["gapped"] == 0
    assert sizes["pending_rebase"] == 0
    assert sizes["retx_pending"] == 0
    # ...and the TCP tables beneath were reaped too.
    assert scenario.primary.tcp.connection_count == 0
    assert scenario.backup.tcp.connection_count == 0
    assert scenario.client.tcp.connection_count == 0
    assert scenario.backup.tcp.tcbs_reaped == churn

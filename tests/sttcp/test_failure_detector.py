"""Tests for heartbeat monitoring and the power switch."""

import pytest

from repro.host.host import Host
from repro.sim.simulator import Simulator
from repro.sttcp.failure_detector import HeartbeatMonitor
from repro.sttcp.power_switch import PowerSwitch


@pytest.fixture
def sim():
    return Simulator(seed=3)


def test_detection_latency_within_paper_bounds(sim):
    """Silence is detected between threshold·HB and (threshold+1)·HB —
    "with an HB every 5 sec ... 15 to 20 seconds" (§6.2)."""
    suspected = []
    monitor = HeartbeatMonitor(sim, interval=5.0, threshold=3, on_suspect=lambda: suspected.append(sim.now))
    monitor.start()
    # Heartbeats arrive until t=12.3, then the peer dies.
    for t in (5.0, 10.0, 12.3):
        sim.schedule_at(t, monitor.heard)
    sim.run(until=60.0)
    assert len(suspected) == 1
    silence = suspected[0] - 12.3
    assert 15.0 <= silence < 20.0 + 1e-9


def test_no_suspicion_while_heartbeats_flow(sim):
    suspected = []
    monitor = HeartbeatMonitor(sim, interval=0.05, threshold=3, on_suspect=lambda: suspected.append(sim.now))
    monitor.start()

    def heartbeats():
        for _ in range(100):
            monitor.heard()
            yield sim.timeout(0.05)

    sim.spawn(heartbeats())
    sim.run(until=5.0)
    assert suspected == []


def test_stop_prevents_suspicion(sim):
    suspected = []
    monitor = HeartbeatMonitor(sim, interval=0.1, threshold=3, on_suspect=lambda: suspected.append(1))
    monitor.start()
    monitor.stop()
    sim.run(until=10.0)
    assert suspected == []


def test_suspicion_fires_only_once(sim):
    suspected = []
    monitor = HeartbeatMonitor(sim, interval=0.1, threshold=3, on_suspect=lambda: suspected.append(sim.now))
    monitor.start()
    sim.run(until=10.0)
    assert len(suspected) == 1
    assert monitor.suspected
    assert monitor.suspected_at == suspected[0]


def test_late_message_does_not_unsuspect(sim):
    monitor = HeartbeatMonitor(sim, interval=0.1, threshold=3, on_suspect=lambda: None)
    monitor.start()
    sim.run(until=1.0)
    assert monitor.suspected
    monitor.heard()
    assert monitor.suspected  # suspicions are permanent (made true by STONITH)


def test_parameters_validated(sim):
    with pytest.raises(ValueError):
        HeartbeatMonitor(sim, interval=0.0, threshold=3, on_suspect=lambda: None)
    with pytest.raises(ValueError):
        HeartbeatMonitor(sim, interval=1.0, threshold=0, on_suspect=lambda: None)


def test_power_switch_crashes_host_after_actuation(sim):
    host = Host(sim, "victim")
    switch = PowerSwitch(sim, actuation_delay=0.010)
    done = []
    switch.cut_power(host, lambda: done.append(sim.now))
    assert host.is_up  # not yet
    sim.run(until=1.0)
    assert not host.is_up
    assert done == [pytest.approx(0.010)]
    assert switch.cuts_performed == 1


def test_power_switch_idempotent_on_dead_host(sim):
    host = Host(sim, "victim")
    host.crash()
    switch = PowerSwitch(sim, actuation_delay=0.010)
    done = []
    switch.cut_power(host, lambda: done.append(True))
    sim.run(until=1.0)
    assert done == [True]  # callback still runs


def test_power_switch_rejects_negative_delay(sim):
    with pytest.raises(ValueError):
        PowerSwitch(sim, actuation_delay=-0.1)

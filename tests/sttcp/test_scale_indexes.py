"""Differential test: :class:`BackupConnectionIndex` vs brute force.

The index is allowed to *over*-approximate internally (stale ack-queue
entries, satisfied retx markers) but must be exact whenever it is read.
Hypothesis drives random event interleavings over fake states and checks
every view against the O(all-connections) scans the index replaced.
"""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sttcp.indexes import BackupConnectionIndex, brute_force_gaps

#: SyncTime for the ack-schedule checks; sim time advances in integer
#: steps so the due-threshold comparison is exact.
SYNC_TIME = 100.0


class FakeTCB:
    __slots__ = ("rcv_nxt", "is_synchronized")

    def __init__(self) -> None:
        self.rcv_nxt = 0
        self.is_synchronized = True


class FakeState:
    __slots__ = (
        "key",
        "closed",
        "last_ack_time",
        "pending_retx",
        "primary_rcv_nxt",
        "tcb",
    )

    def __init__(self, key, now) -> None:
        self.key = key
        self.closed = False
        self.last_ack_time = now
        self.pending_retx = None
        self.primary_rcv_nxt = None
        self.tcb = FakeTCB()


OPS = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 15), st.integers(1, 60)),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(OPS)
# A due-but-unsynchronized state requeued by the sync tick must surface
# again on the very next tick (requeue_unready once hid it behind newer
# queue entries).
@example(ops=[(0, 0, 1), (0, 0, 2), (8, 0, 38), (9, 0, 60), (9, 0, 1)])
def test_index_views_match_brute_force_scans(ops):
    index = BackupConnectionIndex()
    live = {}  # key -> FakeState, the engine's _connections mirror
    rebased = set()
    now = 0.0
    serial = 0

    for opcode, pick, amount in ops:
        now += float(amount)  # strictly monotone, integral
        if opcode == 0 or not live:
            serial += 1
            state = FakeState((serial, 1), now)
            live[state.key] = state
            index.add(state)
        else:
            state = list(live.values())[pick % len(live)]
            if opcode == 1:  # shadow reaped
                state.closed = True
                del live[state.key]
                rebased.discard(state.key)
                index.discard(state)
            elif opcode == 2:  # local receive stream advanced
                state.tcb.rcv_nxt += amount
                index.reconcile_gap(state)
            elif opcode == 3:  # tapped a primary ack
                state.primary_rcv_nxt = (state.primary_rcv_nxt or 0) + amount
                if state.primary_rcv_nxt > state.tcb.rcv_nxt:
                    index.note_gap(state)
            elif opcode == 4:  # backup ack sent
                state.last_ack_time = now
                index.note_acked(state)
            elif opcode == 5:  # recovery request issued
                state.pending_retx = ("request", now)
                index.note_retx_pending(state)
            elif opcode == 6:  # recovery satisfied out-of-band
                state.pending_retx = None  # index must self-purge on read
            elif opcode == 7:  # ISN rebase completed
                rebased.add(state.key)
                index.note_rebased(state)
            elif opcode == 8:  # toggle handshake convergence
                state.tcb.is_synchronized = not state.tcb.is_synchronized
            elif opcode == 9:  # sync tick: the §4.3 ack schedule
                due = index.ack_due(now, SYNC_TIME)
                expected = {
                    s.key
                    for s in live.values()
                    if now - s.last_ack_time >= SYNC_TIME
                }
                assert {s.key for s in due} == expected
                for s in due:  # caller contract: ack or requeue each
                    if s.tcb.is_synchronized:
                        s.last_ack_time = now
                        index.note_acked(s)
                    else:
                        index.requeue_unready(s)

        # Read-time exactness of every view, after every event.
        assert sorted(index.gaps()) == sorted(brute_force_gaps(live.values()))
        assert {s.key for s in index.retx_pending_states()} == {
            s.key for s in live.values() if s.pending_retx is not None
        }
        assert {s.key for s in index.pending_rebase_states()} == {
            key for key in live if key not in rebased
        }
        assert index.pending_rebase_count() == len(live.keys() - rebased)


def test_brute_force_oracle_shape():
    """The oracle itself: open gaps only, closed states excluded."""
    a, b, c = FakeState((1, 1), 0.0), FakeState((2, 1), 0.0), FakeState((3, 1), 0.0)
    a.primary_rcv_nxt = 10  # gap: local stream at 0
    b.primary_rcv_nxt = 5
    b.tcb.rcv_nxt = 5  # caught up
    c.primary_rcv_nxt = 7
    c.closed = True  # reaped
    assert brute_force_gaps([a, b, c]) == [((1, 1), 0, 10)]

"""Failover tests (§4.4, §5, §6.2): detection, takeover, transparency."""

import pytest

from repro.apps.workload import (
    bulk_workload,
    echo_workload,
    interactive_workload,
    upload_workload,
)
from repro.harness.runner import run_workload
from repro.sttcp.backup import ROLE_ACTIVE
from repro.sttcp.shadow import ShadowExtension
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


def failover_run(workload, seed=77, crash_fraction=0.5, deadline=300.0, **scenario_kwargs):
    """Measure the failure-free run, then re-run with a mid-run crash.

    Returns (scenario, failed_run, baseline_run).
    """
    baseline = run_workload(
        workload, scenario=make_scenario(seed=seed, **scenario_kwargs), deadline=deadline
    ).require_clean()
    scenario = make_scenario(seed=seed, **scenario_kwargs)
    crash_at = 0.1 + crash_fraction * baseline.total_time
    run = run_workload(workload, scenario=scenario, crash_at=crash_at, deadline=deadline)
    return scenario, run, baseline


@pytest.mark.parametrize(
    "workload",
    [echo_workload(20), interactive_workload(10), bulk_workload(256 * KB), upload_workload(256 * KB)],
    ids=["echo", "interactive", "bulk", "upload"],
)
def test_client_completes_and_verifies_through_failover(workload):
    scenario, run, _ = failover_run(workload)
    assert run.result.error is None
    assert run.result.verified
    assert scenario.pair.failed_over
    assert not scenario.primary.is_up


def test_detection_latency_within_three_to_four_heartbeats():
    scenario, run, _ = failover_run(echo_workload(30), hb_interval=0.05)
    metrics = run.failover
    assert metrics.detection_latency is not None
    assert 3 * 0.05 <= metrics.detection_latency <= 4 * 0.05 + 0.01


def test_takeover_includes_stonith_delay():
    scenario, run, _ = failover_run(
        echo_workload(30), hb_interval=0.05, stonith_delay=0.02
    )
    metrics = run.failover
    assert metrics.takeover_latency - metrics.detection_latency >= 0.02


def test_failover_time_scales_with_heartbeat_interval():
    """The paper's central Table 2 relationship."""
    times = {}
    for hb in (0.05, 0.4):
        _scenario, failed, baseline = failover_run(
            echo_workload(30), seed=81, hb_interval=hb
        )
        assert failed.result.verified
        times[hb] = failed.total_time - baseline.total_time
    assert times[0.4] > times[0.05] * 3


def test_client_never_learns_about_the_failover():
    """The client's TCP sees no RST and no address change — only a pause."""
    scenario, run, _ = failover_run(bulk_workload(256 * KB))
    assert run.result.error is None
    # Exactly one client connection existed for the whole run.
    assert run.result.exchanges_done == 1
    assert scenario.client.tcp.resets_sent == 0


def test_backup_answers_arp_after_takeover():
    scenario, _run, _ = failover_run(echo_workload(20))
    from repro.harness.scenario import SERVICE_IP

    assert SERVICE_IP not in scenario.backup.arp.suppressed_ips


def test_new_connections_served_by_backup_after_failover():
    scenario, _run, _ = failover_run(echo_workload(20))
    assert scenario.pair.backup_engine.role is ROLE_ACTIVE
    # A brand-new client connection must now be served by the backup.
    late = run_workload(echo_workload(5), scenario=scenario, deadline=60.0)
    assert late.result.error is None
    assert late.result.verified
    # And it is a regular (non-shadow) connection on the backup.
    new_conns = [
        t for t in scenario.backup.tcp.connections if ShadowExtension.of(t) is None
    ]
    assert new_conns or scenario.backup.tcp.segments_demuxed > 0


def test_crash_before_any_connection_still_fails_over():
    scenario = make_scenario()
    scenario.start_service()
    scenario.crash_primary_at(0.05)
    scenario.sim.run(until=2.0)
    assert scenario.pair.failed_over
    # A client arriving after the takeover is served by the backup.
    run = run_workload(echo_workload(5), scenario=scenario, deadline=60.0)
    assert run.result.error is None and run.result.verified


def test_crash_during_handshake_window():
    """Crash right around connection establishment: the shadow holds the
    connection even if the primary dies within the first exchanges."""
    scenario = make_scenario()
    run = run_workload(
        echo_workload(20), scenario=scenario, crash_at=0.101, deadline=300.0
    )
    assert run.result.error is None
    assert run.result.verified


def test_upload_failover_uses_backup_receive_state():
    """For an upload, the backup must continue the *receive* stream where
    its tap left off — the client retransmits only what nobody acked."""
    scenario, run, _ = failover_run(upload_workload(512 * KB))
    assert run.result.error is None
    assert run.result.verified  # server-side receipt confirmed all bytes


def test_shadow_suppression_lifted_on_all_connections():
    scenario, _run, _ = failover_run(echo_workload(20))
    for tcb in scenario.pair.backup_engine.shadow_connections:
        assert not ShadowExtension.of(tcb).suppressing


def test_force_failover_for_planned_maintenance():
    scenario = make_scenario()
    scenario.start_service()
    scenario.sim.run(until=0.1)
    scenario.pair.backup_engine.force_failover()
    scenario.sim.run(until=0.5)
    assert scenario.pair.failed_over
    assert not scenario.primary.is_up  # STONITH made the suspicion true


def test_wrong_suspicion_made_safe_by_stonith():
    """Partition the UDP channel while the primary is healthy: the backup
    wrongly suspects, but the power switch kills the primary *before* the
    takeover, so the client never sees two servers (§3.2, §4.4)."""
    from repro.faults.injection import partition_channel

    scenario = make_scenario(hb_interval=0.05)
    scenario.start_service()
    partition_channel(scenario.hub, scenario.pair.config.channel_port)
    run = run_workload(echo_workload(50), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    # Let the (wrong) suspicion mature, then verify it was made safe.
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert scenario.pair.failed_over
    assert not scenario.primary.is_up
    # Takeover strictly after the primary was powered off.
    assert scenario.pair.backup_engine.takeover_time >= scenario.primary.crashed_at
    # Service continues: a fresh client run is served by the new primary.
    late = run_workload(echo_workload(5), scenario=scenario, deadline=60.0)
    assert late.result.error is None and late.result.verified


def test_failover_in_switched_topology():
    scenario, run, _ = failover_run(bulk_workload(128 * KB), topology="switched")
    assert run.result.error is None
    assert run.result.verified
    assert scenario.pair.failed_over


def test_multiple_connections_all_survive_failover():
    scenario = make_scenario()
    scenario.start_service()
    results = []

    def client_runner():
        from repro.apps.client import client_session

        result = yield scenario.client.spawn(
            client_session(scenario.client, scenario.service_addr, echo_workload(40))
        )
        results.append(result)

    def all_clients():
        processes = [
            scenario.client.spawn(client_runner(), f"runner-{i}") for i in range(3)
        ]
        for process in processes:
            yield process

    scenario.crash_primary_at(0.12)
    driver = scenario.client.spawn(all_clients(), "driver")
    scenario.sim.run_until_complete(driver, deadline=120.0)
    assert len(results) == 3
    assert all(r.error is None and r.verified for r in results)
    assert len(scenario.pair.backup_engine.shadow_connections) == 3

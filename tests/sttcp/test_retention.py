"""Tests for the primary's second receive buffer (§4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FailoverError
from repro.sttcp.retention import SecondReceiveBuffer
from repro.util.bytespan import PatternBytes, RealBytes


def test_retains_read_bytes():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"abcdef"))
    assert buffer.retained_bytes == 6
    assert buffer.lowest_retained_offset == 0


def test_backup_ack_releases():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"abcdef"))
    assert buffer.backup_acked(4) == 4
    assert buffer.retained_bytes == 2
    assert buffer.lowest_retained_offset == 4


def test_backup_ack_clamped_to_retained_range():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"abc"))
    # The backup's NextByteExpected can run ahead of the primary's reads.
    assert buffer.backup_acked(1000) == 3
    assert buffer.retained_bytes == 0


def test_backup_ack_backwards_is_noop():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"abcdef"))
    buffer.backup_acked(5)
    assert buffer.backup_acked(2) == 0


def test_overflow_counts_beyond_capacity():
    buffer = SecondReceiveBuffer(10)
    buffer.on_read(0, RealBytes(b"x" * 10))
    assert buffer.overflow_bytes() == 0
    buffer.on_read(10, RealBytes(b"y" * 5))
    assert buffer.overflow_bytes() == 5  # second buffer full → pinches window
    buffer.backup_acked(8)
    assert buffer.overflow_bytes() == 0


def test_fetch_serves_recovery_ranges():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"0123456789"))
    assert buffer.fetch(2, 6).to_bytes() == b"2345"
    assert buffer.fetch(50, 60).to_bytes() == b""  # outside retained range
    buffer.backup_acked(5)
    assert buffer.fetch(0, 10).to_bytes() == b"56789"  # clipped at head


def test_non_contiguous_read_rejected():
    buffer = SecondReceiveBuffer(100)
    buffer.on_read(0, RealBytes(b"abc"))
    with pytest.raises(FailoverError):
        buffer.on_read(10, RealBytes(b"zzz"))


def test_disable_reverts_to_standard_tcp():
    buffer = SecondReceiveBuffer(10)
    buffer.on_read(0, RealBytes(b"x" * 20))
    buffer.disable()
    assert buffer.overflow_bytes() == 0
    assert buffer.retained_bytes == 0
    buffer.on_read(20, RealBytes(b"more"))  # silently ignored now
    assert buffer.retained_bytes == 0


def test_counters_track_pressure():
    buffer = SecondReceiveBuffer(8)
    buffer.on_read(0, RealBytes(b"x" * 12))
    assert buffer.peak_usage == 12
    assert buffer.overflow_byte_peak == 4
    assert buffer.bytes_retained_total == 12
    buffer.backup_acked(12)
    assert buffer.bytes_released_total == 12


def test_capacity_validated():
    with pytest.raises(ValueError):
        SecondReceiveBuffer(0)


@given(st.data())
def test_prop_retention_invariants(data):
    """Retained range is always [acked, read-high); fetch serves exactly
    the intersection of the request and the retained range."""
    capacity = data.draw(st.integers(1, 64))
    buffer = SecondReceiveBuffer(capacity)
    offset = 0
    acked = 0
    for _ in range(data.draw(st.integers(1, 10))):
        if data.draw(st.booleans()):
            length = data.draw(st.integers(1, 32))
            buffer.on_read(offset, PatternBytes(length, offset, 9))
            offset += length
        else:
            target = data.draw(st.integers(0, offset + 10))
            buffer.backup_acked(target)
            acked = max(acked, min(target, offset))
        assert buffer.lowest_retained_offset == acked
        assert buffer.retained_bytes == offset - acked
        assert buffer.overflow_bytes() == max(0, (offset - acked) - capacity)
        lo = data.draw(st.integers(0, offset + 5))
        hi = data.draw(st.integers(lo, offset + 5))
        got = buffer.fetch(lo, hi)
        expected_lo, expected_hi = max(lo, acked), min(hi, offset)
        if expected_lo < expected_hi:
            assert got == PatternBytes(expected_hi - expected_lo, expected_lo, 9)
        else:
            assert len(got) == 0

"""Fixtures for ST-TCP tests: a ready-to-run hub scenario."""

from __future__ import annotations

import pytest

from repro.harness.calibrate import FAST_LAN
from repro.harness.scenario import SERVICE_IP, SERVICE_PORT, Scenario
from repro.sttcp.config import STTCPConfig


def make_scenario(
    hb_interval: float = 0.05,
    seed: int = 77,
    topology: str = "hub",
    with_logger: bool = False,
    **config_kwargs,
) -> Scenario:
    config = STTCPConfig(hb_interval=hb_interval, **config_kwargs)
    if with_logger:
        config.use_logger = True
    return Scenario(
        profile=FAST_LAN,
        topology=topology,
        sttcp=config,
        with_logger=with_logger,
        seed=seed,
    )


@pytest.fixture
def scenario() -> Scenario:
    return make_scenario()


SERVICE = (SERVICE_IP, SERVICE_PORT)

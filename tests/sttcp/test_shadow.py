"""Failure-free shadowing tests (§4.1–4.3): ISN sync, suppression,
state tracking, backup acknowledgments, retention release."""

from repro.apps.workload import bulk_workload, echo_workload, upload_workload
from repro.harness.runner import run_workload
from repro.sttcp.backup import ROLE_PASSIVE
from repro.sttcp.shadow import ShadowExtension
from repro.tcp.constants import TCPState
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


def run_on(scenario, workload, **kwargs):
    return run_workload(workload, scenario=scenario, deadline=120.0, **kwargs)


def test_backup_is_silent_during_failure_free_run():
    """Transparency: the backup transmits nothing on the service
    connection while the primary is alive (its replies are suppressed)."""
    scenario = make_scenario()
    run_on(scenario, echo_workload(10)).require_clean()
    backup_nic = scenario.backup.nics[0]
    # Everything the backup sent is UDP channel traffic — no TCP segments.
    assert scenario.backup.tcp.connections  # shadow exists
    for tcb in scenario.backup.tcp.connections:
        assert tcb.segments_sent == 0
        assert ShadowExtension.of(tcb).suppressed_segments > 0


def test_shadow_rebases_to_primary_isn():
    scenario = make_scenario()
    run_on(scenario, echo_workload(5)).require_clean()
    shadow = scenario.pair.backup_engine.shadow_connections[0]
    primary_tcb = scenario.primary.tcp.connections[0]
    assert ShadowExtension.of(shadow).isn_rebased
    assert shadow.iss == primary_tcb.iss or (
        # Absolute epochs may differ; wire (32-bit) ISNs must agree.
        shadow.iss & 0xFFFFFFFF == primary_tcb.iss & 0xFFFFFFFF
    )


def test_shadow_tracks_receive_stream_exactly():
    scenario = make_scenario()
    run_on(scenario, upload_workload(64 * KB)).require_clean()
    shadow = scenario.pair.backup_engine.shadow_connections[0]
    primary_tcb = scenario.primary.tcp.connections[0]
    assert shadow.state is TCPState.ESTABLISHED
    assert shadow.recv_buffer.rcv_nxt_offset == primary_tcb.recv_buffer.rcv_nxt_offset
    assert shadow.bytes_received >= 64 * KB


def test_shadow_send_state_follows_client_acks():
    scenario = make_scenario()
    run_on(scenario, bulk_workload(64 * KB)).require_clean()
    shadow = scenario.pair.backup_engine.shadow_connections[0]
    primary_tcb = scenario.primary.tcp.connections[0]
    # Everything the client acknowledged is released on both replicas.
    assert shadow.snd_una - shadow.iss == primary_tcb.snd_una - primary_tcb.iss
    assert shadow.send_buffer.una_offset == primary_tcb.send_buffer.una_offset


def test_backup_engine_stays_passive_without_failure():
    scenario = make_scenario()
    run_on(scenario, echo_workload(10)).require_clean()
    assert scenario.pair.backup_engine.role is ROLE_PASSIVE
    assert scenario.pair.backup_engine.detection_time is None
    assert not scenario.pair.failed_over


def test_backup_acks_release_primary_retention():
    scenario = make_scenario()
    run_on(scenario, upload_workload(128 * KB)).require_clean()
    primary_engine = scenario.pair.primary_engine
    state = list(primary_engine._connections.values())[0]
    # The run is over and acks flowed: nearly everything was released.
    assert state.retention.bytes_released_total > 0
    assert state.retention.retained_bytes < state.retention.capacity
    assert scenario.pair.backup_engine.acks_sent > 0
    assert primary_engine.acks_received == scenario.pair.backup_engine.acks_sent


def test_x_threshold_controls_ack_rate():
    """Smaller X → more BackupAcks for the same upload (§4.3)."""
    few = make_scenario(seed=78, ack_threshold_fraction=1.0)
    run_on(few, upload_workload(128 * KB)).require_clean()
    many = make_scenario(seed=78, ack_threshold_fraction=0.25)
    run_on(many, upload_workload(128 * KB)).require_clean()
    assert many.pair.backup_engine.acks_sent > few.pair.backup_engine.acks_sent


def test_sync_time_acks_when_idle():
    """With no client traffic at all, acks still flow every SyncTime and
    serve as backup→primary heartbeats (§4.3)."""
    scenario = make_scenario(sync_time=0.02)
    run_on(scenario, echo_workload(2)).require_clean()
    before = scenario.pair.backup_engine.acks_sent
    scenario.sim.run(until=scenario.sim.now + 1.0)  # idle period
    after = scenario.pair.backup_engine.acks_sent
    assert after - before >= 40  # ~one per 20 ms of idle time


def test_shadow_handles_client_ack_ahead_of_slow_application():
    """If the backup's server produces its response after the client has
    already acknowledged the primary's copy, the early ACK must apply
    once the data materialises (§4.2 determinism)."""
    scenario = make_scenario()
    # Slow the backup's NIC so tapped traffic (and thus its app) lags.
    scenario.backup.nics[0].processing_delay = 0.0005
    # The shadow is reaped from the engine once it closes, so capture the
    # TCB at attach time to inspect it post-hoc.
    shadows = []
    scenario.backup.tcp.connection_observers.append(shadows.append)
    run_on(scenario, bulk_workload(64 * KB)).require_clean()
    primary_tcb = scenario.primary.tcp.connections[0]
    primary_final_offset = primary_tcb.snd_una - primary_tcb.iss
    # Let the lagging backup drain its receive queue and catch up.
    scenario.sim.run(until=scenario.sim.now + 2.0)
    (shadow,) = shadows
    assert shadow.snd_una - shadow.iss >= primary_final_offset


def test_multiple_concurrent_connections_all_shadowed():
    scenario = make_scenario()
    scenario.start_service()
    results = []

    def client_runner():
        from repro.apps.client import client_session

        result = yield scenario.client.spawn(
            client_session(scenario.client, scenario.service_addr, echo_workload(5))
        )
        results.append(result)

    def all_clients():
        processes = [
            scenario.client.spawn(client_runner(), f"runner-{i}") for i in range(3)
        ]
        for process in processes:
            yield process

    driver = scenario.client.spawn(all_clients(), "driver")
    scenario.sim.run_until_complete(driver, deadline=60.0)
    assert len(results) == 3
    assert all(r.verified and r.error is None for r in results)
    assert len(scenario.pair.backup_engine.shadow_connections) == 3


def test_primary_window_pinches_when_backup_acks_lag():
    """With a tiny second buffer and rare acks, retained bytes overflow
    and consume the advertised window — the paper's only visible
    deviation from standard TCP (§4.2)."""
    scenario = make_scenario(
        seed=79,
        second_buffer_size=2 * KB,
        ack_threshold_fraction=1.0,
        sync_time=5.0,
    )
    run_on(scenario, upload_workload(64 * KB)).require_clean()
    state = list(scenario.pair.primary_engine._connections.values())[0]
    assert state.retention.overflow_byte_peak > 0

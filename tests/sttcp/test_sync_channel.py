"""UDP-channel tests (§4.2–4.3): tap-loss repair, messages, backup failure."""


from repro.apps.workload import bulk_workload, upload_workload
from repro.faults.injection import add_tap_loss, add_tap_outage
from repro.harness.runner import run_workload
from repro.sttcp.messages import (
    AckReply,
    BackupAck,
    Heartbeat,
    RetxData,
    RetxRequest,
    SMALL_MESSAGE_SIZE,
    conn_key,
)
from repro.util.bytespan import RealBytes
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


# ------------------------------------------------------------------- messages
def test_small_messages_cost_128_bytes_on_the_wire():
    """§4.3: 'the total length (including all header overheads down to
    Ethernet) of an ack packet is 128 bytes'."""
    from repro.net.frame import ETHERNET_OVERHEAD
    from repro.ip.datagram import IP_HEADER_SIZE
    from repro.udp.datagram import UDP_HEADER_SIZE

    ack = BackupAck((1, 2), 12345)
    total = ack.wire_size + UDP_HEADER_SIZE + IP_HEADER_SIZE + ETHERNET_OVERHEAD
    assert total == 128
    for message in (Heartbeat("primary", 1), AckReply((1, 2), 5), RetxRequest((1, 2), 0, 9)):
        assert message.wire_size == SMALL_MESSAGE_SIZE


def test_retx_data_sizes_by_payload():
    message = RetxData((1, 2), 0, RealBytes(b"x" * 100))
    assert message.wire_size == 132


def test_conn_key_is_value_based():
    from repro.net.addresses import ip

    assert conn_key(ip("10.0.0.10"), 5000) == conn_key(ip("10.0.0.10"), 5000)
    assert conn_key(ip("10.0.0.10"), 5000) != conn_key(ip("10.0.0.10"), 5001)


# ---------------------------------------------------------- tap-loss recovery
def test_random_tap_loss_repaired_over_channel():
    """Frames the backup's tap drops are repaired by RETX_REQUEST —
    invisible to the client, and the shadow ends with the full stream."""
    scenario = make_scenario(seed=90, retx_request_timeout=0.02)
    rng = scenario.sim.random.stream("taploss")
    add_tap_loss(scenario.backup.nics[0], rng, 0.05)
    run = run_workload(upload_workload(256 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    scenario.sim.run(until=scenario.sim.now + 1.0)  # let repairs finish
    backup = scenario.pair.backup_engine
    assert backup.retx_requests_sent > 0
    assert backup.retx_bytes_recovered > 0
    shadow = backup.shadow_connections[0]
    assert shadow.recv_buffer.rcv_nxt_offset >= 256 * KB


def test_tap_outage_repaired_when_primary_survives():
    scenario = make_scenario(seed=91, retx_request_timeout=0.02)
    add_tap_outage(scenario.backup.nics[0], 0.12, 0.16)
    run = run_workload(upload_workload(256 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    scenario.sim.run(until=scenario.sim.now + 1.0)
    backup = scenario.pair.backup_engine
    assert backup.retx_bytes_recovered > 0
    primary_engine = scenario.pair.primary_engine
    assert primary_engine.retx_requests_served > 0


def test_tap_loss_on_download_workload_recovers_ack_stream():
    """Even for downloads the backup must keep its (tiny) client receive
    stream complete; heavy tap loss must not wedge the shadow."""
    scenario = make_scenario(seed=92, retx_request_timeout=0.02)
    rng = scenario.sim.random.stream("taploss2")
    add_tap_loss(scenario.backup.nics[0], rng, 0.10)
    run = run_workload(bulk_workload(128 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    scenario.sim.run(until=scenario.sim.now + 1.0)
    shadow = scenario.pair.backup_engine.shadow_connections[0]
    primary_tcb_offset = 150  # the single request record
    assert shadow.recv_buffer.rcv_nxt_offset >= primary_tcb_offset


def test_retention_only_released_after_backup_ack():
    """Bytes the backup missed must still be fetchable from the primary
    until acknowledged — the §4.2 guarantee."""
    scenario = make_scenario(seed=93, sync_time=10.0, ack_threshold_fraction=1.0)
    # Backup drops everything in a window and acks almost never.
    add_tap_outage(scenario.backup.nics[0], 0.12, 0.14)
    run = run_workload(upload_workload(64 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None
    state = list(scenario.pair.primary_engine._connections.values())[0]
    retention = state.retention
    # Whatever the backup has not acked is still here (or was served).
    backup_acked = scenario.pair.backup_engine.acks_sent
    assert retention.retained_bytes > 0 or backup_acked > 0


# ------------------------------------------------------------- backup failure
def test_backup_crash_switches_primary_to_non_fault_tolerant_mode():
    scenario = make_scenario(hb_interval=0.05)
    scenario.start_service()
    scenario.sim.run(until=0.1)
    scenario.backup.crash()
    scenario.sim.run(until=1.0)
    primary_engine = scenario.pair.primary_engine
    assert not primary_engine.fault_tolerant
    assert primary_engine.backup_failed_at is not None
    # Detection took 3–4 heartbeat intervals.
    latency = primary_engine.backup_failed_at - 0.1
    assert 0.15 <= latency <= 0.25


def test_service_continues_after_backup_failure():
    """Losing the backup costs fault tolerance, not service."""
    scenario = make_scenario(hb_interval=0.05)
    scenario.start_service()
    scenario.sim.run(until=0.05)
    scenario.backup.crash()
    run = run_workload(upload_workload(128 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    # Retention disabled: nothing accumulates on the primary any more.
    for state in scenario.pair.primary_engine._connections.values():
        assert not state.retention.enabled
        assert state.retention.retained_bytes == 0


def test_backup_failure_does_not_pinch_primary_window():
    """Without the backup, the second buffer must stop consuming window
    (otherwise a dead backup would throttle the service forever)."""
    scenario = make_scenario(hb_interval=0.05, second_buffer_size=2 * KB)
    scenario.start_service()
    scenario.sim.run(until=0.05)
    scenario.backup.crash()
    run = run_workload(upload_workload(256 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None and run.result.verified
    for state in scenario.pair.primary_engine._connections.values():
        assert state.retention.overflow_bytes() == 0

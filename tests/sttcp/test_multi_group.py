"""Two independent ST-TCP pairs sharing one hub must stay isolated.

On a hub every backup NIC is promiscuous, so each backup *sees* the
other pair's segments, heartbeats and channel traffic.  Isolation rests
entirely on the engines filtering by their own service identity — these
tests drive that filter under the nastiest overlap hypothesis can
produce: both clients using the *same* ephemeral port and the *same*
ISN, both primaries choosing the same server ISN, and both pairs
sharing one UDP channel port number.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.client import run_client
from repro.apps.workload import echo_workload
from repro.harness.calibrate import FAST_LAN
from repro.host.host import Host
from repro.net.addresses import ip
from repro.net.medium import Hub
from repro.sim.simulator import Simulator
from repro.sttcp.backup import ROLE_ACTIVE, ROLE_PASSIVE
from repro.sttcp.config import STTCPConfig
from repro.sttcp.manager import STTCPServerPair
from repro.sttcp.power_switch import PowerSwitch

SERVICE_PORT = 8000


@dataclasses.dataclass
class PairNodes:
    """One primary/backup/client trio on the shared hub."""

    client: Host
    primary: Host
    backup: Host
    pair: STTCPServerPair
    service_ip: object
    client_ip: object

    @property
    def backup_ip(self):
        return self.backup.interfaces[0].ip


class TwoPairHub:
    """Two complete ST-TCP groups, one shared broadcast domain."""

    def __init__(
        self,
        seed: int = 77,
        client_port: int | None = None,
        client_isn: int | None = None,
        server_isn: int | None = None,
        hb_interval: float = 0.05,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.hb_interval = hb_interval
        profile = FAST_LAN
        self.hub = Hub(self.sim, profile.link_rate_bps, delay=profile.hub_delay)
        self.pairs: list[PairNodes] = []
        base = profile.tcp_config()
        client_cfg = (
            dataclasses.replace(base, isn=client_isn)
            if client_isn is not None
            else base
        )
        server_cfg = (
            dataclasses.replace(base, isn=server_isn)
            if server_isn is not None
            else base
        )
        for index in range(2):
            client = Host(self.sim, f"client{index}", tcp_config=client_cfg)
            primary = Host(self.sim, f"primary{index}", tcp_config=server_cfg)
            backup = Host(self.sim, f"backup{index}", tcp_config=server_cfg)
            client_ip = ip(f"10.0.0.{10 + index}")
            service_ip = ip(f"10.0.0.{100 + index}")
            self._join(client, client_ip)
            primary_nic = self._join(primary, ip(f"10.0.0.{1 + 2 * index}"))
            primary.add_vnic("svi", service_ip, primary_nic.mac, primary_nic)
            backup_nic = self._join(backup, ip(f"10.0.0.{2 + 2 * index}"))
            backup_nic.promiscuous = True  # the hub tap (§6)
            backup.add_vnic("svi", service_ip, backup_nic.mac, backup_nic)
            if client_port is not None:
                # Both clients draw the same first ephemeral port: the
                # 4-tuples then differ only in the client's address.
                client.tcp.ephemeral_start = client_port
                client.tcp._next_ephemeral = client_port
            config = STTCPConfig(hb_interval=hb_interval)  # shared channel port
            pair = STTCPServerPair(
                primary,
                backup,
                service_ip,
                SERVICE_PORT,
                config=config,
                power_switch=PowerSwitch(self.sim, config.stonith_delay),
            )
            pair.start_service()
            self.pairs.append(
                PairNodes(client, primary, backup, pair, service_ip, client_ip)
            )
        self.crashed_at: float | None = None

    def _join(self, host: Host, address):
        nic = host.add_nic()
        self.hub.attach(nic)
        host.configure_ip(nic, address, 24)
        return nic

    def run_clients(self, exchanges: int = 8, deadline: float = 120.0):
        processes = [
            run_client(
                nodes.client, (nodes.service_ip, SERVICE_PORT), echo_workload(exchanges)
            )
            for nodes in self.pairs
        ]
        results = [
            self.sim.run_until_complete(process, deadline=deadline)
            for process in processes
        ]
        # Short runs finish between sync ticks; settle a few heartbeat
        # periods so the backups' periodic acks have fired.
        self.sim.run(until=self.sim.now + 5 * self.hb_interval)
        return results

    def assert_isolated(self) -> None:
        """Each backup shadows exactly its own pair; acks never cross."""
        for nodes in self.pairs:
            shadows = nodes.pair.backup_engine.shadow_connections
            assert len(shadows) == 1, (
                f"{nodes.backup.name} shadows {len(shadows)} connections"
            )
            (tcb,) = shadows
            assert tcb.local_ip == nodes.service_ip
            assert tcb.remote_ip == nodes.client_ip, (
                f"{nodes.backup.name} cross-tapped a foreign client "
                f"{tcb.remote_ip}"
            )
            assert nodes.pair.backup_engine.acks_sent > 0
            for state in nodes.pair.primary_engine._connections.values():
                assert set(state.acked_by) <= {nodes.backup_ip.value}, (
                    f"{nodes.primary.name} acked by a foreign backup: "
                    f"{sorted(state.acked_by)}"
                )


@given(
    port=st.integers(32768, 60999),
    client_isn=st.integers(0, 2**32 - 1),
    server_isn=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_pairs_stay_isolated_under_port_and_isn_overlap(
    port, client_isn, server_isn
):
    cluster = TwoPairHub(
        client_port=port, client_isn=client_isn, server_isn=server_isn
    )
    results = cluster.run_clients()
    for result in results:
        assert result.error is None
        assert result.verified
        assert result.exchanges_done == 8
    cluster.assert_isolated()
    for nodes in cluster.pairs:
        assert not nodes.pair.failed_over


def test_crash_in_one_pair_leaves_the_other_untouched():
    """Crashing primary 0 mid-run fails pair 0 over; pair 1 — whose
    heartbeats ride the *same* channel port number on the same hub —
    must neither mask the detection nor get dragged into a takeover."""
    cluster = TwoPairHub(seed=91, client_port=40000, client_isn=5000, server_isn=5000)
    victim, bystander = cluster.pairs
    cluster.sim.schedule_at(0.12, victim.primary.crash)
    results = cluster.run_clients(exchanges=2000, deadline=300.0)
    for result in results:
        assert result.error is None
        assert result.verified
        assert result.exchanges_done == 2000
    # Pair 0 failed over despite pair 1's heartbeats on the shared port.
    assert victim.pair.failed_over
    assert victim.pair.backup_engine.role is ROLE_ACTIVE
    assert victim.pair.backup_engine.detection_time is not None
    # Pair 1 never suspected anything and kept its roles.
    assert bystander.primary.is_up
    assert not bystander.pair.failed_over
    assert bystander.pair.backup_engine.role is ROLE_PASSIVE
    assert bystander.pair.backup_engine.detection_time is None
    # The surviving pair's ack bookkeeping is still single-sourced.
    for state in bystander.pair.primary_engine._connections.values():
        assert set(state.acked_by) <= {bystander.backup_ip.value}


def test_bystander_backup_taps_nothing_foreign():
    """Stronger than 'shadows match': the bystander's engine never even
    *requests* recovery for the other pair's stream (no cross retx)."""
    cluster = TwoPairHub(seed=92, client_port=40000, client_isn=7, server_isn=7)
    results = cluster.run_clients(exchanges=50)
    for result in results:
        assert result.error is None and result.verified
    cluster.assert_isolated()
    for nodes in cluster.pairs:
        engine = nodes.pair.backup_engine
        # Every retained shadow key belongs to this pair's client.
        for state in engine._connections.values():
            assert state.tcb.remote_ip == nodes.client_ip

"""System-level property tests: the invariants the whole design rests on.

* Whatever frames the network loses, a TCP stream delivers exactly the
  bytes that were sent, in order.
* Whenever the primary crashes, an ST-TCP client still completes its run
  with every byte verified — the transparency claim, quantified over
  random crash times.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.apps.workload import bulk_workload, echo_workload, upload_workload
from repro.harness.calibrate import FAST_LAN
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.net.loss import RandomLoss
from repro.sim.simulator import Simulator
from repro.sttcp.config import STTCPConfig
from repro.util.bytespan import PatternBytes
from repro.util.units import KB

from tests.conftest import LanPair

SLOW_PROPERTY = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW_PROPERTY
@given(
    size=st.integers(1, 60 * KB),
    loss_rate=st.floats(0.0, 0.08),
    seed=st.integers(0, 2**16),
)
def test_prop_tcp_delivers_exact_stream_under_loss(size, loss_rate, seed):
    """Any payload size, any (survivable) random loss: the receiver reads
    exactly the sent byte stream."""
    sim = Simulator(seed=seed)
    lan = LanPair(sim)
    lan.hub.loss_model = RandomLoss(sim.random.stream("loss"), loss_rate)
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(size, 0, 5))
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        data = yield sock.recv_exactly(size)
        outcome["ok"] = data == PatternBytes(size, 0, 5)
        sock.close()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=3600.0)
    assert outcome["ok"]


@SLOW_PROPERTY
@given(
    crash_fraction=st.floats(0.01, 0.99),
    seed=st.integers(0, 2**16),
)
def test_prop_sttcp_transparent_for_any_crash_time_bulk(crash_fraction, seed):
    """The primary may die at *any* point of a bulk download; the client
    finishes with verified content."""
    workload = bulk_workload(128 * KB)
    config = STTCPConfig(hb_interval=0.05)
    baseline = run_workload(
        workload, profile=FAST_LAN, sttcp=config, seed=seed, deadline=600.0
    ).require_clean()
    scenario = Scenario(profile=FAST_LAN, sttcp=config, seed=seed)
    crash_at = 0.1 + crash_fraction * baseline.total_time
    run = run_workload(workload, scenario=scenario, crash_at=crash_at, deadline=600.0)
    assert run.result.error is None
    assert run.result.verified


@SLOW_PROPERTY
@given(
    crash_fraction=st.floats(0.01, 0.99),
    seed=st.integers(0, 2**16),
)
def test_prop_sttcp_transparent_for_any_crash_time_upload(crash_fraction, seed):
    """Same invariant for the upload direction, which exercises the
    second-buffer and UDP-ack machinery."""
    workload = upload_workload(128 * KB)
    config = STTCPConfig(hb_interval=0.05)
    baseline = run_workload(
        workload, profile=FAST_LAN, sttcp=config, seed=seed, deadline=600.0
    ).require_clean()
    scenario = Scenario(profile=FAST_LAN, sttcp=config, seed=seed)
    crash_at = 0.1 + crash_fraction * baseline.total_time
    run = run_workload(workload, scenario=scenario, crash_at=crash_at, deadline=600.0)
    assert run.result.error is None
    assert run.result.verified


@SLOW_PROPERTY
@given(
    crash_fraction=st.floats(0.01, 0.99),
    tap_loss=st.floats(0.0, 0.05),
    seed=st.integers(0, 2**16),
)
# The logger's ARP reply dying on the lossy tap once silenced gap
# recovery entirely (no ARP retransmit, no query retry).
@example(crash_fraction=0.90625, tap_loss=0.046875, seed=1338)
def test_prop_sttcp_transparent_with_lossy_tap_and_crash(crash_fraction, tap_loss, seed):
    """Crash at any time *and* a lossy tap.

    A frame lost on the tap in the instant before the crash is a genuine
    *double failure* — the dead primary can no longer repair it — so full
    transparency under this fault model requires the packet logger
    (§3.2).  (Hypothesis found exactly that race when this property was
    first written without the logger.)
    """
    from repro.faults.injection import add_tap_loss

    workload = echo_workload(30)
    config = STTCPConfig(
        hb_interval=0.05, retx_request_timeout=0.01, use_logger=True
    )
    baseline = run_workload(
        workload, profile=FAST_LAN, sttcp=config, seed=seed, deadline=600.0
    ).require_clean()
    scenario = Scenario(profile=FAST_LAN, sttcp=config, with_logger=True, seed=seed)
    add_tap_loss(
        scenario.backup.nics[0], scenario.sim.random.stream("tap"), tap_loss
    )
    crash_at = 0.1 + crash_fraction * baseline.total_time
    run = run_workload(workload, scenario=scenario, crash_at=crash_at, deadline=600.0)
    assert run.result.error is None
    assert run.result.verified

"""Tests for failover timeline reconstruction.

The headline invariant (the ISSUE's acceptance criterion): on a
figure5-style run, the phase durations sum to the measured
client-visible outage within one tick.
"""

import pytest

from repro.obs.timeline import (
    PHASE_DETECTION,
    PHASE_RECOVERY,
    PHASE_RESUME,
    PHASE_RTO_WAIT,
    PHASE_TAKEOVER,
    reconstruct_failover,
)
from repro.sim.trace import TraceRecord

#: "Within one tick" for the phase-sum acceptance criterion.
TICK = 1e-4


def _rec(time, category, event, **fields):
    return TraceRecord(time, category, event, fields)


class TestReconstruction:
    def test_none_without_takeover(self):
        records = [
            _rec(0.0, "app", "client_progress", bytes=0),
            _rec(1.0, "app", "client_progress", bytes=100),
        ]
        assert reconstruct_failover(records) is None

    def test_none_with_too_few_checkpoints(self):
        records = [
            _rec(0.0, "app", "client_progress", bytes=0),
            _rec(0.2, "sttcp", "primary_suspected"),
            _rec(0.3, "sttcp", "takeover"),
        ]
        assert reconstruct_failover(records) is None

    def test_full_phase_decomposition(self):
        records = [
            _rec(0.00, "app", "client_progress", bytes=0),
            _rec(0.10, "app", "client_progress", bytes=100),
            _rec(0.12, "host", "crash", host="primary"),
            _rec(0.30, "sttcp", "primary_suspected"),
            _rec(0.31, "sttcp", "takeover"),
            _rec(0.35, "failover", "first_ack"),
            _rec(0.40, "app", "client_progress", bytes=200),
        ]
        timeline = reconstruct_failover(records)
        assert timeline.outage_start == 0.10
        assert timeline.outage_end == 0.40
        assert [p.name for p in timeline.phases] == [
            PHASE_DETECTION,
            PHASE_TAKEOVER,
            PHASE_RTO_WAIT,
            PHASE_RESUME,
        ]
        assert timeline.phase(PHASE_DETECTION).duration == pytest.approx(0.20)
        assert sum(p.duration for p in timeline.phases) == pytest.approx(
            timeline.outage
        )
        assert dict(timeline.events)[0.12] == "crash"

    def test_recovery_phase_when_first_ack_missing(self):
        records = [
            _rec(0.00, "app", "client_progress", bytes=0),
            _rec(0.10, "app", "client_progress", bytes=100),
            _rec(0.30, "sttcp", "primary_suspected"),
            _rec(0.31, "sttcp", "takeover"),
            _rec(0.40, "app", "client_progress", bytes=200),
        ]
        timeline = reconstruct_failover(records)
        assert [p.name for p in timeline.phases] == [
            PHASE_DETECTION,
            PHASE_TAKEOVER,
            PHASE_RECOVERY,
        ]

    def test_summary_and_render(self):
        records = [
            _rec(0.00, "app", "client_progress", bytes=0),
            _rec(0.10, "app", "client_progress", bytes=100),
            _rec(0.30, "sttcp", "primary_suspected"),
            _rec(0.31, "sttcp", "takeover"),
            _rec(0.40, "app", "client_progress", bytes=200),
        ]
        timeline = reconstruct_failover(records)
        summary = timeline.summary()
        assert summary["outage"] == pytest.approx(0.30)
        assert summary["phases"][PHASE_TAKEOVER] == pytest.approx(0.01)
        assert summary["events"]["takeover"] == 0.31
        text = timeline.render()
        assert "failover timeline" in text
        assert "sum of phases" in text


class TestAgainstFigure5Run:
    @pytest.fixture(scope="class")
    def failed_run(self):
        """One figure5-style echo failover (crash at the half-way mark)."""
        from repro.apps.workload import echo_workload
        from repro.harness.runner import CLIENT_START, run_workload
        from repro.sttcp.config import STTCPConfig

        workload = echo_workload(40)
        sttcp = STTCPConfig(hb_interval=0.05)
        baseline = run_workload(workload, sttcp=sttcp, seed=7).require_clean()
        crash_at = CLIENT_START + 0.5 * baseline.total_time
        return run_workload(
            workload, sttcp=sttcp, crash_at=crash_at, seed=7, deadline=600.0
        ).require_clean()

    def test_phases_sum_to_measured_outage(self, failed_run):
        timeline = failed_run.timeline
        assert timeline is not None
        total = sum(p.duration for p in timeline.phases)
        assert abs(total - timeline.outage) <= TICK
        # ...and the outage window IS the gap-analysis measurement.
        assert abs(timeline.outage - failed_run.result.max_gap) <= TICK

    def test_phases_partition_the_window(self, failed_run):
        timeline = failed_run.timeline
        assert timeline.phases[0].start == timeline.outage_start
        assert timeline.phases[-1].end == timeline.outage_end
        for previous, current in zip(timeline.phases, timeline.phases[1:]):
            assert previous.end == current.start

    def test_detection_phase_matches_heartbeat_config(self, failed_run):
        # threshold * interval <= detection < (threshold + 1) * interval,
        # measured from the client's last progress (slightly earlier than
        # the silence start, so allow the loose lower bound).
        detection = failed_run.timeline.phase(PHASE_DETECTION)
        config = failed_run.scenario.sttcp_config
        assert detection.duration < (config.hb_miss_threshold + 2) * config.hb_interval

    def test_measure_failover_time_records_the_summary(self):
        from repro.apps.workload import echo_workload
        from repro.harness.runner import measure_failover_time
        from repro.sttcp.config import STTCPConfig

        sample = measure_failover_time(
            echo_workload(20), STTCPConfig(hb_interval=0.05), seed=9
        )
        timeline = sample["timeline"]
        assert timeline is not None
        total = sum(timeline["phases"].values())
        assert abs(total - sample["max_gap"]) <= TICK

    def test_upload_run_reaches_first_ack_phases(self):
        """Upload recovery is driven by the client's retransmission, so
        the four-phase form (incl. rto_wait) must appear."""
        from repro.apps.workload import upload_workload
        from repro.harness.runner import CLIENT_START, run_workload
        from repro.sttcp.config import STTCPConfig

        workload = upload_workload(256 * 1024)
        sttcp = STTCPConfig(hb_interval=0.05)
        baseline = run_workload(workload, sttcp=sttcp, seed=3).require_clean()
        crash_at = CLIENT_START + 0.5 * baseline.total_time
        failed = run_workload(
            workload, sttcp=sttcp, crash_at=crash_at, seed=3, deadline=600.0
        ).require_clean()
        names = [p.name for p in failed.timeline.phases]
        assert names == [PHASE_DETECTION, PHASE_TAKEOVER, PHASE_RTO_WAIT, PHASE_RESUME]
        assert abs(
            sum(p.duration for p in failed.timeline.phases)
            - failed.result.max_gap
        ) <= TICK


class TestClusterPhases:
    def _takeover_records(self):
        return [
            _rec(0.650, "cluster", "fence_requested", host="p0"),
            _rec(0.660, "cluster", "fenced", host="p0"),
            _rec(0.660, "cluster", "election_begin", service="s0"),
            _rec(0.660, "cluster", "elected", service="s0"),
            _rec(0.710, "cluster", "shadow_converged", service="s0"),
            _rec(0.100, "tcp", "send", seq=1),  # hot-path noise, ignored
        ]

    def test_none_without_cluster_activity(self):
        from repro.obs.timeline import reconstruct_cluster_phases

        records = [_rec(0.1, "tcp", "send"), _rec(0.2, "app", "progress")]
        assert reconstruct_cluster_phases(records) is None

    def test_fence_election_resync_windows(self):
        from repro.obs.timeline import (
            PHASE_ELECTION,
            PHASE_FENCE,
            PHASE_RESYNC,
            reconstruct_cluster_phases,
        )

        phases = reconstruct_cluster_phases(self._takeover_records())
        assert phases is not None
        assert [p.name for p in phases.phases] == [
            PHASE_FENCE,
            PHASE_ELECTION,
            PHASE_RESYNC,
        ]
        fence = phases.phase(PHASE_FENCE)
        assert (fence.start, fence.end) == (0.650, 0.660)
        resync = phases.phase(PHASE_RESYNC)
        assert resync.duration == pytest.approx(0.050)
        summary = phases.summary()
        assert set(summary["phases"]) == {"fence", "election", "resync"}
        assert [0.710, "shadow_converged"] in [
            list(e) for e in summary["events"]
        ]
        assert "phase fence" in phases.render()

    def test_fence_without_actuation_spans_requests(self):
        from repro.obs.timeline import PHASE_FENCE, reconstruct_cluster_phases

        records = [
            _rec(0.1, "cluster", "fence_requested", host="p0"),
            _rec(0.2, "cluster", "fence_requested", host="p1"),
        ]
        phases = reconstruct_cluster_phases(records)
        fence = phases.phase(PHASE_FENCE)
        assert (fence.start, fence.end) == (0.1, 0.2)
        assert phases.phase(PHASE_FENCE) is not None
        assert phases.phase("election") is None

    def test_real_cluster_run_phases_are_ordered(self):
        from repro.cluster.run import ClusterRun
        from repro.cluster.scenario import load_scenario

        run = ClusterRun(load_scenario("configs/cluster/smoke.json"))
        record = run.execute()
        phases = run.collector.reconstruct_cluster()
        assert phases is not None
        summary = record["cluster_phases"]
        assert summary == phases.summary()
        fence = summary["phases"]["fence"]
        resync = summary["phases"]["resync"]
        assert fence["start"] >= record["crash_at"]
        assert resync["end"] >= fence["end"]

"""Tests for the metrics registry: instruments, scoping, snapshot/delta."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)


class TestInstruments:
    def test_counter_inc_and_direct_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        counter.value += 2  # the hot-path form
        assert counter.value == 7

    def test_gauge_set(self):
        gauge = Gauge("g")
        gauge.set("active")
        assert gauge.value == "active"

    def test_histogram_stats(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(555.5)
        assert histogram.mean == pytest.approx(138.875)
        assert histogram.min == 0.5
        assert histogram.max == 500.0
        assert histogram.bucket_counts == [1, 1, 1, 1]

    def test_histogram_quantiles(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(100.0)
        assert histogram.quantile(0.50) == 1.0
        # The overflow bucket reports the observed maximum, never inf.
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) is not None
        assert Histogram("empty").quantile(0.5) is None

    def test_empty_histogram_quantile_and_summary(self):
        histogram = Histogram("empty")
        assert histogram.quantile(0.99) is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["p99"] is None
        assert summary["min"] is None and summary["max"] is None
        assert summary["mean"] is None

    def test_single_sample_p99_is_the_sample(self):
        # One observation of 0.007 lands in the (0.005, 0.01] bucket;
        # the naive digest answer would be the bucket ceiling 0.01.
        histogram = Histogram("h")
        histogram.observe(0.007)
        assert histogram.quantile(0.99) == pytest.approx(0.007)
        assert histogram.quantile(0.50) == pytest.approx(0.007)
        assert histogram.summary()["p99"] == pytest.approx(0.007)

    def test_overflow_only_histogram_reports_max(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(42.0)
        histogram.observe(17.0)
        assert histogram.quantile(0.99) == 42.0

    def test_bucket_quantile_helper_edges(self):
        assert bucket_quantile((1.0, 2.0), [0, 0, 0], 0.5) is None
        assert bucket_quantile((1.0, 2.0), [], 0.5) is None
        # No observed max known: the overflow bucket degrades to inf.
        assert bucket_quantile((1.0,), [0, 3], 0.99) == float("inf")
        # Observed max clamps both overflow and in-range buckets.
        assert bucket_quantile((1.0,), [0, 3], 0.99, observed_max=5.5) == 5.5
        assert bucket_quantile((1.0,), [3, 0], 0.99, observed_max=0.25) == 0.25

    def test_histogram_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(0.02)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert set(summary) == {"count", "total", "mean", "min", "max", "p50", "p99"}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_value_and_names(self):
        registry = MetricsRegistry()
        registry.counter("primary.tcp.sent").value += 3
        registry.histogram("primary.tcp.rtt").observe(0.01)
        assert registry.value("primary.tcp.sent") == 3
        assert registry.value("primary.tcp.rtt") == 1  # histogram: count
        assert registry.value("missing", default=None) is None
        assert registry.names("primary.tcp") == [
            "primary.tcp.rtt",
            "primary.tcp.sent",
        ]

    def test_snapshot_and_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        counter.value += 5
        gauge.set("up")
        histogram.observe(1.0)
        before = registry.snapshot()
        assert before["c"] == 5
        assert before["g"] == "up"
        assert before["h"]["count"] == 1

        counter.value += 2
        histogram.observe(2.0)
        histogram.observe(3.0)
        delta = registry.delta(before)
        assert delta == {"c": 2, "h": 2}  # gauge unchanged: omitted

        gauge.set("down")
        delta = registry.delta(before)
        assert delta["g"] == "down"

    def test_delta_against_empty_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").value += 4
        assert registry.delta({}) == {"c": 4}

    def test_delta_counter_reset_never_goes_negative(self):
        # A host teardown mid-interval re-creates instruments from zero;
        # the delta must report the post-reset count, not claim events
        # un-happened with a negative number.
        registry = MetricsRegistry()
        counter = registry.counter("backup.sttcp.acks_sent")
        counter.value = 100
        before = registry.snapshot()
        counter.value = 3  # reset + 3 post-reset increments
        assert registry.delta(before) == {"backup.sttcp.acks_sent": 3}

    def test_delta_histogram_reset_never_goes_negative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        histogram.observe(2.0)
        # Baseline claims more observations than the (reset) instrument.
        delta = registry.delta({"h": {"count": 10}})
        assert delta == {"h": 2}


class TestScope:
    def test_scope_prefixes_names(self):
        registry = MetricsRegistry()
        scope = registry.scope("backup").scope("sttcp")
        counter = scope.counter("acks_sent")
        counter.value += 1
        assert registry.value("backup.sttcp.acks_sent") == 1

    def test_scope_snapshot_is_filtered(self):
        registry = MetricsRegistry()
        registry.counter("primary.tcp.sent").value += 1
        scope = registry.scope("backup")
        scope.counter("tcp.sent").value += 9
        snapshot = scope.snapshot()
        assert snapshot == {"backup.tcp.sent": 9}
        scope.counter("tcp.sent").value += 1
        assert scope.delta(snapshot) == {"backup.tcp.sent": 1}


class TestSimulatorIntegration:
    def test_layers_register_scoped_counters(self):
        from repro.apps.workload import echo_workload
        from repro.harness.runner import run_workload

        run = run_workload(echo_workload(3), seed=11).require_clean()
        metrics = run.scenario.sim.metrics
        names = metrics.names()
        assert any(name.endswith(".tcp.segments_demuxed") for name in names)
        assert any(name.endswith(".ip.delivered") for name in names)
        assert metrics.value("client.tcp.segments_demuxed") > 0
        # The attribute API still reads the registry-backed counters.
        client_tcp = run.scenario.client.tcp
        assert client_tcp.segments_demuxed == metrics.value(
            "client.tcp.segments_demuxed"
        )

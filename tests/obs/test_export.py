"""Tests for trace export: Chrome trace-event JSON and JSONL round-trip."""

import io
import json
from pathlib import Path

import pytest

from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.spans import assemble_spans
from repro.sim.trace import RecordingSink, Tracer


def _small_stream():
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    tracer.emit(0.001, "tcp", "send", seq=1)
    sid = tracer.begin_span(0.002, "tcp", "handshake", host="client")
    tracer.end_span(0.004, "tcp", "handshake", sid, outcome="established")
    tracer.begin_span(0.005, "sttcp", "takeover_episode")  # left open
    return sink.records


class TestChromeTrace:
    def test_event_shapes(self):
        events = chrome_trace_events(_small_stream())
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # Metadata: one process_name + one thread_name per category.
        assert len(by_ph["M"]) == 3
        # The closed handshake is a complete event with duration in µs.
        (complete,) = by_ph["X"]
        assert complete["name"] == "handshake"
        assert complete["ts"] == pytest.approx(2000.0)
        assert complete["dur"] == pytest.approx(2000.0)
        assert complete["args"] == {"host": "client", "outcome": "established"}
        # The open takeover episode degrades to a begin event.
        (begin,) = by_ph["B"]
        assert begin["name"] == "takeover_episode"
        # The plain record is a thread-scoped instant.
        (instant,) = by_ph["i"]
        assert instant["name"] == "send"
        assert instant["s"] == "t"

    def test_tids_are_stable_per_category(self):
        events = chrome_trace_events(_small_stream())
        tcp_tids = {e["tid"] for e in events if e.get("cat") == "tcp"}
        sttcp_tids = {e["tid"] for e in events if e.get("cat") == "sttcp"}
        assert len(tcp_tids) == 1 and len(sttcp_tids) == 1
        assert tcp_tids != sttcp_tids

    def test_write_parses_back(self):
        fh = io.StringIO()
        count = write_chrome_trace(_small_stream(), fh)
        document = json.loads(fh.getvalue())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count


class TestDrillRunExport:
    def test_drill_run_export_is_valid_and_spans_pair(self, tmp_path):
        """Export a real drill run, parse it back, and check the span
        accounting matches the assembly on the raw records."""
        from repro.drill.runner import run_program
        from repro.drill.script import load_script

        script = (
            Path(__file__).parent.parent
            / "drill"
            / "scripts"
            / "t01_handshake_3way.py"
        )
        result, env = run_program(load_script(script))
        assert result.passed
        records = env.flight.records()
        spans = assemble_spans(records)
        assert spans.spans, "a handshake drill must produce at least one span"

        fh = io.StringIO()
        write_chrome_trace(records, fh)
        document = json.loads(fh.getvalue())
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        open_begins = [e for e in events if e["ph"] == "B"]
        closed_spans = [s for s in spans.spans if not s.open]
        assert len(complete) == len(closed_spans)
        assert len(open_begins) == len(spans.open_spans)
        for event in complete:
            assert event["dur"] >= 0
        # Timestamps are µs and non-decreasing per the source ordering.
        handshakes = [e for e in complete if e["name"] == "handshake"]
        assert handshakes
        # Every event JSON-serializable (args rendered through format_field).
        json.dumps(events)


def _flow_stream():
    """A two-span causal chain plus an unrelated record."""
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    flow = tracer.new_flow()
    episode = tracer.begin_span(0.5, "sttcp", "takeover_episode", flow=flow)
    fence = tracer.begin_span(0.5, "cluster", "fence", host="p0", flow=flow)
    tracer.end_span(0.51, "cluster", "fence", fence, outcome="fenced")
    tracer.end_span(0.52, "sttcp", "takeover_episode", episode)
    tracer.emit(0.6, "tcp", "send", seq=1)
    return sink.records


class TestFlowEvents:
    def test_chain_renders_as_flow_arrows(self):
        events = chrome_trace_events(_flow_stream())
        flow_events = [e for e in events if e["ph"] in ("s", "t", "f")]
        # Two member spans: one start, one finish, no steps.
        assert [e["ph"] for e in flow_events] == ["s", "f"]
        start, finish = flow_events
        assert start["id"] == finish["id"] == 1
        assert start["name"] == finish["name"] == "flow-1"
        assert start["cat"] == "sttcp" and finish["cat"] == "cluster"
        assert finish["bp"] == "e"  # bind to the enclosing slice
        # Member slices advertise the flow id in their args.
        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["args"]["flow"] == 1 for e in slices)

    def test_three_member_chain_has_a_step(self):
        tracer = Tracer()
        sink = RecordingSink()
        tracer.add_sink(sink)
        flow = tracer.new_flow()
        for index, t in enumerate((0.1, 0.2, 0.3)):
            sid = tracer.begin_span(t, "cluster", f"hop{index}", flow=flow)
            tracer.end_span(t + 0.05, "cluster", f"hop{index}", sid)
        events = chrome_trace_events(sink.records)
        assert [e["ph"] for e in events if e["ph"] in ("s", "t", "f")] == [
            "s",
            "t",
            "f",
        ]

    def test_flow_survives_jsonl_round_trip(self):
        records = _flow_stream()
        fh = io.StringIO()
        write_jsonl(records, fh)
        fh.seek(0)
        back = read_jsonl(fh)
        chains = assemble_spans(back).flows()
        assert list(chains) == [1]
        assert [s.name for s in chains[1]] == ["takeover_episode", "fence"]
        # The re-imported stream renders the same flow arrows.
        arrows = [
            (e["ph"], e["ts"])
            for e in chrome_trace_events(back)
            if e["ph"] in ("s", "t", "f")
        ]
        assert arrows == [
            (e["ph"], e["ts"])
            for e in chrome_trace_events(records)
            if e["ph"] in ("s", "t", "f")
        ]

    def test_stream_without_flows_emits_no_arrows(self):
        events = chrome_trace_events(_small_stream())
        assert not [e for e in events if e["ph"] in ("s", "t", "f")]


class TestJsonl:
    def test_round_trip_preserves_span_protocol(self):
        records = _small_stream()
        fh = io.StringIO()
        assert write_jsonl(records, fh) == len(records)
        fh.seek(0)
        back = read_jsonl(fh)
        assert len(back) == len(records)
        assert [r.event for r in back] == [r.event for r in records]
        # Span reassembly works on the re-imported stream.
        spans = assemble_spans(back)
        assert spans.first("handshake").duration == pytest.approx(0.002)
        assert len(spans.open_spans) == 1

    def test_blank_lines_skipped(self):
        fh = io.StringIO('{"t":1.0,"cat":"a","ev":"b"}\n\n')
        records = read_jsonl(fh)
        assert len(records) == 1
        assert records[0].fields == {}


class TestCliExport:
    def test_trace_export_verb(self, tmp_path, capsys, monkeypatch):
        from repro.harness.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "export", "--exchanges", "30", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "takeover_episode" in names
        assert "handshake" in names

"""Tests for span assembly: nesting, orphan ends, open spans, flows."""

import pytest

from repro.obs.spans import (
    assemble_spans,
    causal_chains,
    is_span_record,
    render_span_tree,
)
from repro.sim.trace import RecordingSink, Tracer


def _traced(fn):
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    fn(tracer)
    return sink.records


class TestAssembly:
    def test_begin_end_pairing(self):
        def scenario(tracer):
            sid = tracer.begin_span(1.0, "tcp", "handshake", host="client")
            tracer.end_span(1.5, "tcp", "handshake", sid, outcome="established")

        spans = assemble_spans(_traced(scenario))
        assert len(spans.spans) == 1
        span = spans.first("handshake")
        assert not span.open
        assert span.duration == 0.5
        # Begin fields and extra end fields merge; reserved keys stripped.
        assert span.fields == {"host": "client", "outcome": "established"}

    def test_nesting_via_parent_ids(self):
        def scenario(tracer):
            outer = tracer.begin_span(0.0, "sttcp", "takeover_episode")
            inner = tracer.begin_span(0.1, "sttcp", "shadow_convergence", parent=outer)
            tracer.end_span(0.2, "sttcp", "shadow_convergence", inner)
            tracer.end_span(0.3, "sttcp", "takeover_episode", outer)

        spans = assemble_spans(_traced(scenario))
        assert [s.name for s in spans.roots] == ["takeover_episode"]
        assert [s.name for s in spans.roots[0].children] == ["shadow_convergence"]
        assert "takeover_episode" in render_span_tree(spans)

    def test_span_ids_are_deterministic(self):
        first = _traced(lambda t: t.begin_span(0.0, "a", "x"))
        second = _traced(lambda t: t.begin_span(0.0, "a", "x"))
        assert first == second

    def test_non_span_records_pass_through(self):
        def scenario(tracer):
            tracer.emit(0.0, "tcp", "send", seq=1)
            sid = tracer.begin_span(0.1, "tcp", "retx_burst")
            tracer.end_span(0.2, "tcp", "retx_burst", sid)

        records = _traced(scenario)
        assert [is_span_record(r) for r in records] == [False, True, True]
        assert len(assemble_spans(records).spans) == 1


class TestDegeneracies:
    def test_open_span_survives_crash(self):
        """A span begun but never closed (the host died mid-episode)
        must still appear, flagged open."""

        def scenario(tracer):
            tracer.begin_span(2.0, "sttcp", "takeover_episode", rank=0)

        spans = assemble_spans(_traced(scenario))
        span = spans.first("takeover_episode")
        assert span.open
        assert span.end is None
        assert spans.open_spans == [span]

    def test_orphan_end_is_collected_not_crashed(self):
        def scenario(tracer):
            tracer.end_span(1.0, "tcp", "handshake", 999)

        spans = assemble_spans(_traced(scenario))
        assert spans.spans == []
        assert len(spans.orphan_ends) == 1

    def test_duplicate_end_first_wins(self):
        def scenario(tracer):
            sid = tracer.begin_span(0.0, "tcp", "retx_burst")
            tracer.end_span(1.0, "tcp", "retx_burst", sid)
            tracer.end_span(2.0, "tcp", "retx_burst", sid)

        spans = assemble_spans(_traced(scenario))
        assert spans.first("retx_burst").end == 1.0
        assert spans.orphan_ends == []  # a late duplicate is ignored

    def test_missing_parent_degrades_to_root(self):
        def scenario(tracer):
            sid = tracer.begin_span(0.0, "tcp", "child", parent=555)
            tracer.end_span(0.1, "tcp", "child", sid)

        spans = assemble_spans(_traced(scenario))
        assert [s.name for s in spans.roots] == ["child"]


class TestCausalFlows:
    def _takeover_chain(self, tracer):
        """A miniature cross-host takeover: backup → arbiter → election,
        with an instant resume marker terminating the chain."""
        flow = tracer.new_flow()
        episode = tracer.begin_span(0.5, "sttcp", "takeover_episode", flow=flow)
        fence = tracer.begin_span(0.5, "cluster", "fence", host="p0", flow=flow)
        tracer.end_span(0.51, "cluster", "fence", fence, outcome="fenced")
        tracer.emit(0.51, "cluster", "election_begin", service="s0", flow=flow)
        tracer.end_span(0.52, "sttcp", "takeover_episode", episode)
        tracer.emit(0.521, "failover", "first_ack", flow=flow)
        # Unrelated traffic must stay out of the chain.
        tracer.emit(0.522, "tcp", "send", seq=9)
        return flow

    def test_flows_group_member_spans_in_begin_order(self):
        records = _traced(self._takeover_chain)
        spans = assemble_spans(records)
        chains = spans.flows()
        assert list(chains) == [1]
        assert [s.name for s in chains[1]] == ["takeover_episode", "fence"]
        assert spans.flow_of(1) == chains[1]
        assert spans.flow_of(99) == []

    def test_flow_ids_are_deterministic(self):
        tracer = Tracer()
        assert tracer.new_flow() == 1
        assert tracer.new_flow() == 2

    def test_causal_chains_merge_spans_and_instants_in_stream_order(self):
        records = _traced(self._takeover_chain)
        chains = causal_chains(records)
        assert list(chains) == [1]
        nodes = chains[1]
        assert [(n["kind"], n["name"]) for n in nodes] == [
            ("span", "takeover_episode"),
            ("span", "fence"),
            ("event", "election_begin"),
            ("event", "first_ack"),
        ]
        fence = nodes[1]
        assert fence["begin"] == 0.5 and fence["duration"] == pytest.approx(0.01)
        assert nodes[3]["time"] == 0.521

    def test_end_record_can_backfill_the_flow(self):
        def scenario(tracer):
            sid = tracer.begin_span(0.0, "cluster", "resync")
            tracer.end_span(0.1, "cluster", "resync", sid, flow=7)

        spans = assemble_spans(_traced(scenario))
        assert spans.first("resync").flow == 7

    def test_flow_key_never_leaks_into_span_fields(self):
        records = _traced(self._takeover_chain)
        for span in assemble_spans(records).spans:
            assert "flow" not in span.fields

    def test_real_cluster_run_produces_one_ordered_chain(self):
        from repro.cluster.scenario import load_scenario
        from repro.cluster.run import ClusterRun
        from repro.obs.spans import causal_chains as chains_of

        spec = load_scenario("configs/cluster/smoke.json")
        run = ClusterRun(spec)
        record = run.execute()
        assert record["ok"]
        chains = chains_of(run.collector.records)
        assert len(chains) == 1
        (nodes,) = chains.values()
        names = [n["name"] for n in nodes]
        assert names[0] == "takeover_episode"
        assert "fence" in names and "election_begin" in names
        assert "resync" in names and names[-1] == "first_ack"
        # Stream order is causal order: node times never go backwards.
        times = [n.get("begin", n.get("time")) for n in nodes]
        assert times == sorted(times)


class TestRealRunSpans:
    def test_failover_run_emits_the_expected_spans(self):
        from repro.apps.workload import echo_workload
        from repro.harness.calibrate import FAST_LAN
        from repro.harness.runner import run_workload
        from repro.harness.scenario import Scenario
        from repro.sttcp.config import STTCPConfig

        scenario = Scenario(
            profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=7
        )
        sink = RecordingSink()
        scenario.sim.trace.add_sink(sink)
        run_workload(
            echo_workload(30), scenario=scenario, crash_at=0.102, deadline=120.0
        ).require_clean()
        spans = assemble_spans(sink.records)
        names = {span.name for span in spans.spans}
        assert {
            "handshake",
            "shadow_convergence",
            "detection",
            "takeover_episode",
            "fault_tolerant",
        } <= names
        takeover = spans.first("takeover_episode")
        assert not takeover.open
        assert takeover.duration > 0
        detection = spans.first("detection")
        # The detection span covers the silent interval retroactively.
        assert detection.duration > 0.05  # at least one missed heartbeat
        # Every handshake closed (client connects once; shadows mirror it).
        for span in spans.by_name("handshake"):
            assert not span.open

"""Tests for span assembly: nesting, orphan ends, open spans."""

from repro.obs.spans import assemble_spans, is_span_record, render_span_tree
from repro.sim.trace import RecordingSink, Tracer


def _traced(fn):
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    fn(tracer)
    return sink.records


class TestAssembly:
    def test_begin_end_pairing(self):
        def scenario(tracer):
            sid = tracer.begin_span(1.0, "tcp", "handshake", host="client")
            tracer.end_span(1.5, "tcp", "handshake", sid, outcome="established")

        spans = assemble_spans(_traced(scenario))
        assert len(spans.spans) == 1
        span = spans.first("handshake")
        assert not span.open
        assert span.duration == 0.5
        # Begin fields and extra end fields merge; reserved keys stripped.
        assert span.fields == {"host": "client", "outcome": "established"}

    def test_nesting_via_parent_ids(self):
        def scenario(tracer):
            outer = tracer.begin_span(0.0, "sttcp", "takeover_episode")
            inner = tracer.begin_span(0.1, "sttcp", "shadow_convergence", parent=outer)
            tracer.end_span(0.2, "sttcp", "shadow_convergence", inner)
            tracer.end_span(0.3, "sttcp", "takeover_episode", outer)

        spans = assemble_spans(_traced(scenario))
        assert [s.name for s in spans.roots] == ["takeover_episode"]
        assert [s.name for s in spans.roots[0].children] == ["shadow_convergence"]
        assert "takeover_episode" in render_span_tree(spans)

    def test_span_ids_are_deterministic(self):
        first = _traced(lambda t: t.begin_span(0.0, "a", "x"))
        second = _traced(lambda t: t.begin_span(0.0, "a", "x"))
        assert first == second

    def test_non_span_records_pass_through(self):
        def scenario(tracer):
            tracer.emit(0.0, "tcp", "send", seq=1)
            sid = tracer.begin_span(0.1, "tcp", "retx_burst")
            tracer.end_span(0.2, "tcp", "retx_burst", sid)

        records = _traced(scenario)
        assert [is_span_record(r) for r in records] == [False, True, True]
        assert len(assemble_spans(records).spans) == 1


class TestDegeneracies:
    def test_open_span_survives_crash(self):
        """A span begun but never closed (the host died mid-episode)
        must still appear, flagged open."""

        def scenario(tracer):
            tracer.begin_span(2.0, "sttcp", "takeover_episode", rank=0)

        spans = assemble_spans(_traced(scenario))
        span = spans.first("takeover_episode")
        assert span.open
        assert span.end is None
        assert spans.open_spans == [span]

    def test_orphan_end_is_collected_not_crashed(self):
        def scenario(tracer):
            tracer.end_span(1.0, "tcp", "handshake", 999)

        spans = assemble_spans(_traced(scenario))
        assert spans.spans == []
        assert len(spans.orphan_ends) == 1

    def test_duplicate_end_first_wins(self):
        def scenario(tracer):
            sid = tracer.begin_span(0.0, "tcp", "retx_burst")
            tracer.end_span(1.0, "tcp", "retx_burst", sid)
            tracer.end_span(2.0, "tcp", "retx_burst", sid)

        spans = assemble_spans(_traced(scenario))
        assert spans.first("retx_burst").end == 1.0
        assert spans.orphan_ends == []  # a late duplicate is ignored

    def test_missing_parent_degrades_to_root(self):
        def scenario(tracer):
            sid = tracer.begin_span(0.0, "tcp", "child", parent=555)
            tracer.end_span(0.1, "tcp", "child", sid)

        spans = assemble_spans(_traced(scenario))
        assert [s.name for s in spans.roots] == ["child"]


class TestRealRunSpans:
    def test_failover_run_emits_the_expected_spans(self):
        from repro.apps.workload import echo_workload
        from repro.harness.calibrate import FAST_LAN
        from repro.harness.runner import run_workload
        from repro.harness.scenario import Scenario
        from repro.sttcp.config import STTCPConfig

        scenario = Scenario(
            profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=7
        )
        sink = RecordingSink()
        scenario.sim.trace.add_sink(sink)
        run_workload(
            echo_workload(30), scenario=scenario, crash_at=0.102, deadline=120.0
        ).require_clean()
        spans = assemble_spans(sink.records)
        names = {span.name for span in spans.spans}
        assert {
            "handshake",
            "shadow_convergence",
            "detection",
            "takeover_episode",
            "fault_tolerant",
        } <= names
        takeover = spans.first("takeover_episode")
        assert not takeover.open
        assert takeover.duration > 0
        detection = spans.first("detection")
        # The detection span covers the silent interval retroactively.
        assert detection.duration > 0.05  # at least one missed heartbeat
        # Every handshake closed (client connects once; shadows mirror it).
        for span in spans.by_name("handshake"):
            assert not span.open

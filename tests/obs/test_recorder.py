"""Tests for the flight recorder: ring semantics and dump determinism."""

from pathlib import Path

from repro.obs.recorder import FlightRecorder
from repro.sim.trace import TraceRecord, Tracer


def _record(i: int) -> TraceRecord:
    return TraceRecord(i * 0.001, "tcp", "send", {"seq": i})


class TestRing:
    def test_keeps_last_n_oldest_first(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight(_record(i))
        assert [r.fields["seq"] for r in flight.records()] == [6, 7, 8, 9]
        assert flight.total_records == 10
        assert flight.dropped == 6

    def test_under_capacity(self):
        flight = FlightRecorder(capacity=8)
        for i in range(3):
            flight(_record(i))
        assert [r.fields["seq"] for r in flight.records()] == [0, 1, 2]
        assert flight.dropped == 0

    def test_exact_capacity_boundary(self):
        flight = FlightRecorder(capacity=3)
        for i in range(3):
            flight(_record(i))
        assert [r.fields["seq"] for r in flight.records()] == [0, 1, 2]
        flight(_record(3))
        assert [r.fields["seq"] for r in flight.records()] == [1, 2, 3]

    def test_clear(self):
        flight = FlightRecorder(capacity=2)
        flight(_record(0))
        flight.clear()
        assert flight.records() == []
        assert flight.total_records == 0

    def test_rejects_nonpositive_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_header_counts_drops(self):
        flight = FlightRecorder(capacity=2)
        for i in range(5):
            flight(_record(i))
        dump = flight.dump(reason="test crash")
        assert dump.startswith(
            "=== flight recorder dump: test crash (2 of 5 records, 3 dropped) ==="
        )
        assert "tcp/send seq=3" in dump
        assert dump.endswith("\n")

    def test_dump_to_writes_file(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        flight(_record(1))
        path = tmp_path / "dump.txt"
        flight.dump_to(path, reason="x")
        assert path.read_text() == flight.dump(reason="x")


class TestDeterminism:
    @staticmethod
    def _drill_dump() -> str:
        from repro.drill.runner import run_program
        from repro.drill.script import load_script

        script = (
            Path(__file__).parent.parent / "drill" / "scripts" / "t01_handshake_3way.py"
        )
        result, env = run_program(load_script(script))
        assert result.passed
        return env.flight.dump(reason="determinism check")

    def test_same_seed_dump_is_byte_identical(self):
        """Two runs of the same drill (seeded from its name) must produce
        byte-identical flight dumps — wraparound and all."""
        assert self._drill_dump() == self._drill_dump()

    def test_wraparound_in_a_real_run_is_deterministic(self):
        """Force wraparound with a tiny ring on a bulk run: the retained
        window must be the same both times."""
        from repro.apps.workload import echo_workload
        from repro.harness.runner import run_workload
        from repro.harness.scenario import Scenario
        from repro.sttcp.config import STTCPConfig

        def run() -> str:
            scenario = Scenario(sttcp=STTCPConfig(hb_interval=0.05), seed=5)
            flight = FlightRecorder(capacity=64)
            scenario.sim.trace.add_sink(flight)
            run_workload(
                echo_workload(8), scenario=scenario, crash_at=0.102, deadline=120.0
            ).require_clean()
            assert flight.dropped > 0  # the ring actually wrapped
            return flight.dump()

        assert run() == run()


class TestDrillFlightDump:
    def test_failing_drill_leaves_a_dump(self, tmp_path):
        from repro.drill import run_drill_file

        broken = Path(__file__).parent.parent / "drill" / "broken" / "b01_wrong_ack.py"
        result = run_drill_file(broken, flight_dump=tmp_path)
        assert not result.passed
        dumps = list(tmp_path.glob("*.flight.txt"))
        assert len(dumps) == 1
        content = dumps[0].read_text()
        assert content.startswith("=== flight recorder dump: drill b01_wrong_ack failed")
        assert "tcp/" in content  # actual stack activity was recorded

    def test_passing_drill_leaves_no_dump(self, tmp_path):
        from repro.drill import run_drill_file

        script = (
            Path(__file__).parent.parent / "drill" / "scripts" / "t01_handshake_3way.py"
        )
        assert run_drill_file(script, flight_dump=tmp_path).passed
        assert list(tmp_path.glob("*.flight.txt")) == []

    def test_failure_diagnostics_unchanged_by_dump(self, tmp_path):
        """The dump is a side channel: the pinned failure text must be
        byte-identical with and without it."""
        from repro.drill import run_drill_file

        broken = Path(__file__).parent.parent / "drill" / "broken" / "b01_wrong_ack.py"
        with_dump = run_drill_file(broken, flight_dump=tmp_path)
        without = run_drill_file(broken)
        assert with_dump.failure == without.failure

"""Tests for the declarative SLO engine: specs, SLIs, burn rates."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_DIR,
    SLOSpec,
    evaluate_slos,
    load_slo_spec,
    spec_from_dict,
)


def _record(**overrides):
    """A healthy two-pair cluster run record, overridable per test."""
    record = {
        "takeover_latency": 0.2,
        "detection_latency": 0.19,
        "degraded": 0,
        "clients_verified": True,
        "pairs": [
            {
                "service": "s0",
                "completed": True,
                "verified": True,
                "total_time": 1.0,
                "max_gap": 0.2,
            },
            {
                "service": "s1",
                "completed": True,
                "verified": True,
                "total_time": 1.0,
                "max_gap": 0.01,
            },
        ],
        "elections": [{"service": "s0", "sync_latency": 0.1}],
        "invariants": {
            "no_dual_primary": True,
            "takeover_budget": 0.4,
            "election_budget": 0.6,
            "dual_primary": {"violation_count": 0},
        },
        "tsdb": {"digests": {"cluster.election_sync": {"p99": 0.1}}},
    }
    record.update(overrides)
    return record


def _spec(*slos):
    return spec_from_dict({"name": "t", "slos": list(slos)})


def _one(spec, record):
    report = evaluate_slos(spec, record)
    assert len(report.results) == 1
    return report.results[0]


class TestSpecLoading:
    def test_shipped_specs_load_by_name_and_path(self):
        by_name = load_slo_spec("cluster")
        by_path = load_slo_spec(SLO_DIR / "cluster.json")
        assert isinstance(by_name, SLOSpec)
        assert by_name.name == by_path.name == "cluster"
        assert load_slo_spec("configs/slo/scale.json").name == "scale"

    def test_spec_passthrough(self):
        spec = load_slo_spec("cluster")
        assert load_slo_spec(spec) is spec

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="missing keys"):
            spec_from_dict({"name": "x"})
        with pytest.raises(ConfigurationError, match="missing keys"):
            _spec({"name": "a", "sli": "availability"})

    def test_unknown_keys_and_sli_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            spec_from_dict({"name": "x", "slos": [], "bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown sli"):
            _spec({"name": "a", "sli": "nope", "objective": 1})

    def test_bad_objective_and_window_rejected(self):
        with pytest.raises(ConfigurationError, match="objective"):
            _spec({"name": "a", "sli": "availability", "objective": "nope"})
        with pytest.raises(ConfigurationError, match="window"):
            _spec(
                {"name": "a", "sli": "availability", "objective": 0.9, "window": -1}
            )

    def test_empty_slos_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            spec_from_dict({"name": "x", "slos": []})


class TestAvailability:
    def test_worst_pair_wins(self):
        slo = {"name": "a", "sli": "availability", "objective": 0.75}
        result = _one(_spec(slo), _record())
        assert result.value == pytest.approx(0.8)  # s0: 1 - 0.2/1.0
        assert result.burn_rate == pytest.approx(0.8)  # 0.2 gap / 0.25 budget
        assert result.ok

    def test_windowed_burn(self):
        slo = {
            "name": "a",
            "sli": "availability",
            "objective": 0.75,
            "window": 2.0,
        }
        result = _one(_spec(slo), _record())
        # 200ms outage vs 500ms allowance per 2s window.
        assert result.burn_rate == pytest.approx(0.4)
        assert result.ok

    def test_outage_longer_than_window_saturates(self):
        slo = {
            "name": "a",
            "sli": "availability",
            "objective": 0.9,
            "window": 0.1,
        }
        record = _record()
        record["pairs"][0]["max_gap"] = 0.5  # outage dwarfs the window
        result = _one(_spec(slo), record)
        assert result.burn_rate == pytest.approx(0.1 / 0.01)
        assert not result.ok

    def test_no_completed_pairs_fails(self):
        slo = {"name": "a", "sli": "availability", "objective": 0.9}
        result = _one(_spec(slo), _record(pairs=[{"completed": False}]))
        assert not result.ok and result.value is None


class TestLatencies:
    def test_fixed_objective(self):
        slo = {"name": "t", "sli": "takeover_latency", "objective": 0.5}
        result = _one(_spec(slo), _record())
        assert result.value == pytest.approx(0.2)
        assert result.burn_rate == pytest.approx(0.4)
        assert result.ok

    def test_budget_objective_resolves_from_invariants(self):
        slo = {"name": "t", "sli": "takeover_latency", "objective": "budget"}
        result = _one(_spec(slo), _record())
        assert result.objective == pytest.approx(0.4)
        assert result.burn_rate == pytest.approx(0.5)
        assert result.ok

    def test_budget_objective_without_budget_fails_loudly(self):
        slo = {"name": "t", "sli": "takeover_latency", "objective": "budget"}
        result = _one(_spec(slo), _record(invariants={}))
        assert not result.ok
        assert math.isnan(result.objective)
        assert "budget" in result.detail

    def test_nan_latency_fails(self):
        slo = {"name": "t", "sli": "takeover_latency", "objective": 0.5}
        result = _one(_spec(slo), _record(takeover_latency=float("nan")))
        assert not result.ok and result.value is None


class TestElectionSync:
    def test_prefers_tsdb_digest(self):
        slo = {"name": "e", "sli": "election_sync_p99", "objective": "budget"}
        result = _one(_spec(slo), _record())
        assert result.value == pytest.approx(0.1)
        assert "tsdb digest" in result.detail

    def test_falls_back_to_election_records(self):
        slo = {"name": "e", "sli": "election_sync_p99", "objective": 0.6}
        result = _one(_spec(slo), _record(tsdb={}))
        assert result.value == pytest.approx(0.1)
        assert "election records" in result.detail

    def test_no_elections_is_vacuously_ok(self):
        slo = {"name": "e", "sli": "election_sync_p99", "objective": 0.6}
        result = _one(_spec(slo), _record(tsdb={}, elections=[]))
        assert result.ok and result.burn_rate == 0.0


class TestExactlyOnce:
    def test_all_verified(self):
        slo = {"name": "x", "sli": "exactly_once", "objective": 1.0}
        result = _one(_spec(slo), _record())
        assert result.value == 1.0 and result.ok

    def test_degraded_connection_fails(self):
        slo = {"name": "x", "sli": "exactly_once", "objective": 1.0}
        result = _one(_spec(slo), _record(degraded=1))
        assert result.value == 0.0 and not result.ok

    def test_scale_record_flag(self):
        slo = {"name": "x", "sli": "exactly_once", "objective": 1.0}
        record = {"verified": True, "degraded": 0}
        assert _one(_spec(slo), record).ok
        record = {"verified": False, "degraded": 0}
        assert not _one(_spec(slo), record).ok


class TestIndicatorSLIs:
    def test_no_dual_primary(self):
        slo = {"name": "d", "sli": "no_dual_primary", "objective": 1.0}
        assert _one(_spec(slo), _record()).ok
        bad = _record()
        bad["invariants"]["no_dual_primary"] = False
        bad["invariants"]["dual_primary"] = {"violation_count": 2}
        result = _one(_spec(slo), bad)
        assert not result.ok and "2 dual-primary" in result.detail

    def test_resource_leaks(self):
        slo = {"name": "l", "sli": "resource_leaks", "objective": 0}
        record = {
            "leftover_shadows": 0,
            "leftover_client_tcbs": 0,
            "leftover_backup_tcbs": 0,
        }
        assert _one(_spec(slo), record).ok
        record["leftover_shadows"] = 2
        result = _one(_spec(slo), record)
        assert not result.ok and result.value == 2.0

    def test_resource_leaks_without_counters_fails(self):
        slo = {"name": "l", "sli": "resource_leaks", "objective": 0}
        assert not _one(_spec(slo), {}).ok


class TestReport:
    def test_report_shape_and_max_burn(self):
        report = evaluate_slos("cluster", _record())
        assert report.ok
        assert report.max_burn == pytest.approx(0.8)  # availability burn
        doc = report.to_record()
        assert doc["spec"] == "cluster"
        assert doc["ok"] is True
        assert len(doc["slos"]) == 6
        assert all(
            set(s)
            >= {"name", "sli", "objective", "value", "burn_rate", "ok", "detail"}
            for s in doc["slos"]
        )

    def test_failed_lists_only_misses(self):
        record = _record(degraded=3)
        report = evaluate_slos("cluster", record)
        assert not report.ok
        assert [r.name for r in report.failed] == ["exactly-once"]

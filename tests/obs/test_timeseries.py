"""Tests for the sim-time TSDB: sampling, rings, rates, percentiles."""

import json

import pytest

from repro.obs.timeseries import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    TimeSeries,
    TimeSeriesDB,
)
from repro.sim.simulator import Simulator


def _drive(seed=1, interval=0.010, capacity=512, until=1.0, prefix=""):
    """A small scripted workload: counters, a gauge, a histogram."""
    sim = Simulator(seed=seed)
    counter = sim.metrics.counter("h0.tcp.segments")
    gauge = sim.metrics.gauge("h0.tcp.inflight")
    histogram = sim.metrics.histogram("h0.tcp.rtt", bounds=(0.01, 0.05, 0.1))
    other = sim.metrics.counter("h1.tcp.segments")

    def work():
        counter.inc(3)
        other.inc()
        gauge.set(int(sim.now * 100) % 7)
        histogram.observe(0.02 + (sim.now % 0.05))
        if sim.now < until - 0.005:
            sim.schedule(0.005, work)

    sim.schedule(0.0, work)
    tsdb = TimeSeriesDB(sim, interval=interval, capacity=capacity, prefix=prefix)
    tsdb.start()
    sim.run(until=until)
    tsdb.stop()
    return sim, tsdb


class TestSampling:
    def test_cadence_and_kinds(self):
        _sim, tsdb = _drive()
        assert tsdb.names() == [
            "h0.tcp.inflight",
            "h0.tcp.rtt",
            "h0.tcp.segments",
            "h1.tcp.segments",
        ]
        assert tsdb.series("h0.tcp.segments").kind == KIND_COUNTER
        assert tsdb.series("h0.tcp.inflight").kind == KIND_GAUGE
        assert tsdb.series("h0.tcp.rtt").kind == KIND_HISTOGRAM
        # ~1s at 10ms cadence: one sample at t=0 plus one per tick.
        assert tsdb.samples_taken == pytest.approx(101, abs=2)
        series = tsdb.series("h0.tcp.segments")
        times = [t for t, _ in series.points()]
        assert times[0] == 0.0
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.010) for d in deltas)

    def test_prefix_scoping_and_hosts(self):
        _sim, tsdb = _drive(prefix="h0.")
        assert tsdb.names() == ["h0.tcp.inflight", "h0.tcp.rtt", "h0.tcp.segments"]
        assert tsdb.hosts() == ["h0"]

    def test_stop_halts_sampling(self):
        sim = Simulator(seed=1)
        sim.metrics.counter("c").inc()
        tsdb = TimeSeriesDB(sim, interval=0.010)
        tsdb.start()
        sim.run(until=0.05)
        taken = tsdb.samples_taken
        tsdb.stop()
        sim.run(until=0.5)
        assert tsdb.samples_taken == taken

    def test_late_instruments_start_late(self):
        sim = Simulator(seed=1)
        sim.metrics.counter("early")
        tsdb = TimeSeriesDB(sim, interval=0.010)
        tsdb.start()
        sim.schedule(0.055, lambda: sim.metrics.counter("late").inc())
        sim.run(until=0.1)
        tsdb.stop()
        early = tsdb.series("early")
        late = tsdb.series("late")
        assert early.times[0] == 0.0
        assert late.times[0] >= 0.055

    def test_invalid_parameters_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            TimeSeriesDB(sim, interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesDB(sim, capacity=0)


class TestDeterminism:
    def test_same_seed_byte_identical_dump(self):
        _sim1, tsdb1 = _drive(seed=42)
        _sim2, tsdb2 = _drive(seed=42)
        doc1 = json.dumps(tsdb1.to_json(), sort_keys=True)
        doc2 = json.dumps(tsdb2.to_json(), sort_keys=True)
        assert doc1 == doc2


class TestRing:
    def test_capacity_bounds_memory_and_counts_dropped(self):
        _sim, tsdb = _drive(capacity=16)
        series = tsdb.series("h0.tcp.segments")
        assert len(series) == 16
        assert series.dropped == series.total_samples - 16
        assert series.dropped > 0
        assert tsdb.summary()["dropped"] >= series.dropped

    def test_at_or_before(self):
        series = TimeSeries("s", KIND_GAUGE, capacity=8)
        for i in range(5):
            series.add(i * 0.1, i)
        assert series.at_or_before(0.25) == (0.2, 2)
        assert series.at_or_before(-1.0) is None
        assert series.latest() == (0.4, 4)


class TestRates:
    def test_instantaneous_and_windowed_rate(self):
        _sim, tsdb = _drive()
        # 3 increments per 5ms = 600/s, sampled every 10ms.
        assert tsdb.rate("h0.tcp.segments") == pytest.approx(600.0, rel=0.35)
        assert tsdb.rate("h0.tcp.segments", window=0.5) == pytest.approx(
            600.0, rel=0.1
        )

    def test_counter_reset_never_negative(self):
        sim = Simulator(seed=1)
        tsdb = TimeSeriesDB(sim, interval=0.010)
        series = tsdb._make("c", KIND_COUNTER)
        series.add(0.00, 100)
        series.add(0.01, 3)  # reset: engine torn down and rebuilt
        rate = tsdb.rate("c")
        assert rate == pytest.approx(300.0)  # counts from zero, not -9700
        assert all(r >= 0 for _t, r in tsdb.rate_series("c"))

    def test_rate_requires_counter_with_history(self):
        _sim, tsdb = _drive()
        assert tsdb.rate("h0.tcp.inflight") is None  # gauge
        assert tsdb.rate("no.such.series") is None


class TestPercentiles:
    def test_whole_run_digest(self):
        _sim, tsdb = _drive()
        digest = tsdb.digest("h0.tcp.rtt")
        assert digest is not None
        assert digest["count"] > 0
        # Observations are 0.02..0.07: p50 lands in a mid bucket, and
        # everything is clamped to the observed max.
        assert 0.02 <= digest["p50"] <= 0.1
        assert digest["p99"] <= digest["max"] + 1e-9

    def test_windowed_percentile_subtracts_digests(self):
        sim = Simulator(seed=1)
        histogram = sim.metrics.histogram("lat", bounds=(0.01, 0.1, 1.0))
        tsdb = TimeSeriesDB(sim, interval=0.010)
        # Early observations are slow, late ones fast: a short window
        # must see only the fast tail.
        for _ in range(50):
            histogram.observe(0.5)
        sim.schedule(0.075, lambda: [histogram.observe(0.005) for _ in range(50)])
        tsdb.start()
        sim.run(until=0.1)
        tsdb.stop()
        whole = tsdb.percentile("lat", 0.99)
        recent = tsdb.percentile("lat", 0.99, window=0.02)
        assert whole == pytest.approx(0.5)
        assert recent == pytest.approx(0.01)  # fast bucket's upper bound

    def test_missing_series_is_none(self):
        _sim, tsdb = _drive()
        assert tsdb.percentile("nope", 0.99) is None
        assert tsdb.digest("nope") is None
        assert tsdb.percentile("h0.tcp.segments", 0.99) is None  # not a histogram


class TestExport:
    def test_summary_shape(self):
        _sim, tsdb = _drive()
        summary = tsdb.summary()
        assert set(summary) == {"interval", "samples", "series", "points", "dropped"}
        assert summary["series"] == 4

    def test_to_json_is_json_serialisable(self):
        _sim, tsdb = _drive()
        doc = tsdb.to_json()
        parsed = json.loads(json.dumps(doc))
        rtt = parsed["series"]["h0.tcp.rtt"]
        assert rtt["kind"] == KIND_HISTOGRAM
        assert rtt["bounds"] == [0.01, 0.05, 0.1]
        assert len(rtt["t"]) == len(rtt["v"])

"""Tests for health scorecards: grading ladder, rendering, publication."""

import json

import pytest

from repro.obs.scorecard import (
    Scorecard,
    grade_record,
    score_record,
    write_scorecard,
)
from repro.obs.slo import evaluate_slos, spec_from_dict

SPEC = spec_from_dict(
    {
        "name": "t",
        "slos": [
            {"name": "takeover", "sli": "takeover_latency", "objective": 0.5},
            {"name": "exactly-once", "sli": "exactly_once", "objective": 1.0},
        ],
    }
)


def _record(**overrides):
    record = {
        "takeover_latency": 0.1,
        "detection_latency": 0.09,
        "degraded": 0,
        "clients_verified": True,
        "pairs": [
            {
                "service": "s0",
                "completed": True,
                "verified": True,
                "total_time": 1.0,
                "max_gap": 0.1,
            }
        ],
        "invariants": {"all_hold": True, "no_dual_primary": True},
        "cluster_phases": {
            "phases": {"fence": {"start": 0.6, "end": 0.61, "duration": 0.01}},
            "events": [[0.61, "fenced"]],
        },
        "causal": {
            "flows": 1,
            "chain": [
                {
                    "kind": "span",
                    "category": "cluster",
                    "name": "fence",
                    "begin": 0.6,
                    "end": 0.61,
                    "duration": 0.01,
                },
                {
                    "kind": "event",
                    "category": "failover",
                    "name": "first_ack",
                    "time": 0.62,
                },
            ],
        },
        "tsdb": {"summary": {"series": 3}},
    }
    record.update(overrides)
    return record


def _score(record):
    return score_record("smoke", record, evaluate_slos(SPEC, record))


class TestGrades:
    def test_grade_a_comfortable_pass(self):
        record = _record()  # burn 0.2, everything green
        assert grade_record(record, evaluate_slos(SPEC, record)) == "A"

    def test_grade_b_tight_pass(self):
        record = _record(takeover_latency=0.4)  # burn 0.8 ≥ comfort
        assert grade_record(record, evaluate_slos(SPEC, record)) == "B"

    def test_grade_c_slo_missed_invariants_hold(self):
        record = _record(takeover_latency=0.9)  # objective 0.5 missed
        assert grade_record(record, evaluate_slos(SPEC, record)) == "C"

    def test_grade_f_invariant_violated(self):
        record = _record()
        record["invariants"]["all_hold"] = False
        assert grade_record(record, evaluate_slos(SPEC, record)) == "F"

    def test_grade_f_client_failure(self):
        record = _record(clients_verified=False)
        assert grade_record(record, evaluate_slos(SPEC, record)) == "F"

    def test_scale_record_without_invariants_grades_on_slos(self):
        record = {
            "verified": True,
            "degraded": 0,
            "takeover_latency": 0.1,
            "leftover_shadows": 0,
        }
        report = evaluate_slos(SPEC, record)
        assert grade_record(record, report) == "A"
        record["verified"] = False
        assert grade_record(record, evaluate_slos(SPEC, record)) == "F"

    def test_scale_record_uses_verified_flag(self):
        record = {"verified": True, "ok": True, "takeover_latency": 0.1}
        report = evaluate_slos(SPEC, record)
        assert grade_record(record, report) in ("A", "B", "C")


class TestScore:
    def test_score_shape(self):
        score = _score(_record())
        assert score.name == "smoke" and score.ok
        assert score.takeover_latency == pytest.approx(0.1)
        assert len(score.causal_chain) == 2
        doc = score.to_record()
        assert doc["grade"] == "A" and doc["ok"] is True

    def test_nan_latency_becomes_none(self):
        score = _score(_record(takeover_latency=float("nan")))
        assert score.takeover_latency is None


class TestRendering:
    def test_markdown_sections(self):
        card = Scorecard(title="repro health", scores=[_score(_record())])
        md = card.render_markdown()
        assert md.startswith("# repro health")
        assert "| scenario | grade | SLOs met | max burn | takeover | degraded |" in md
        assert "| smoke | **A** | 2/2 " in md
        assert "## smoke — grade A" in md
        assert "Phases: fence 10.0 ms" in md
        assert "- `cluster/fence` 0.600000 +10.0 ms" in md
        assert "- `failover/first_ack` 0.620000" in md
        assert md.rstrip().endswith("**Overall: PASS**")

    def test_markdown_flags_violations(self):
        record = _record(takeover_latency=0.9)
        card = Scorecard(title="t", scores=[_score(record)])
        md = card.render_markdown()
        assert "**VIOLATED**" in md
        assert "**Overall: FAIL**" in md

    def test_empty_scorecard_fails(self):
        assert not Scorecard(title="t").ok


class TestPublication:
    def test_write_scorecard_round_trip(self, tmp_path):
        card = Scorecard(title="t", scores=[_score(_record())])
        md_path, json_path = write_scorecard(card, tmp_path / "out")
        assert md_path.read_text() == card.render_markdown()
        doc = json.loads(json_path.read_text())
        assert doc["ok"] is True
        assert doc["scenarios"][0]["name"] == "smoke"
        # Deterministic serialisation: keys sorted, trailing newline.
        assert json_path.read_text() == json.dumps(
            card.to_json(), indent=1, sort_keys=True
        ) + "\n"

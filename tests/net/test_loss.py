"""Tests for frame-loss models."""

import random

from repro.net.addresses import fresh_unicast_mac
from repro.net.frame import ETHERTYPE_IPV4, EthernetFrame
from repro.net.loss import BurstLoss, NoLoss, RandomLoss, ScriptedLoss, WindowLoss


def frame():
    return EthernetFrame(fresh_unicast_mac(), fresh_unicast_mac(), ETHERTYPE_IPV4, None, 100)


def test_no_loss_never_drops():
    model = NoLoss()
    assert not any(model(frame(), 0.0) for _ in range(100))
    assert model.seen == 100
    assert model.dropped == 0


def test_random_loss_rate_zero_and_one():
    assert not any(RandomLoss(random.Random(1), 0.0)(frame(), 0.0) for _ in range(50))
    model = RandomLoss(random.Random(1), 1.0)
    assert all(model(frame(), 0.0) for _ in range(50))


def test_random_loss_statistics():
    model = RandomLoss(random.Random(42), 0.3)
    drops = sum(model(frame(), 0.0) for _ in range(5000))
    assert 0.25 < drops / 5000 < 0.35


def test_random_loss_validates_rate():
    import pytest

    with pytest.raises(ValueError):
        RandomLoss(random.Random(), 1.5)


def test_scripted_loss_by_index():
    model = ScriptedLoss(drop_indices=[1, 3])
    results = [model(frame(), 0.0) for _ in range(4)]
    assert results == [True, False, True, False]


def test_scripted_loss_by_predicate():
    big = EthernetFrame(fresh_unicast_mac(), fresh_unicast_mac(), ETHERTYPE_IPV4, None, 1000)
    model = ScriptedLoss(predicate=lambda f: f.payload_size > 500)
    assert model(big, 0.0)
    assert not model(frame(), 0.0)


def test_window_loss_drops_only_inside_window():
    model = WindowLoss(1.0, 2.0)
    assert not model(frame(), 0.5)
    assert model(frame(), 1.0)
    assert model(frame(), 1.999)
    assert not model(frame(), 2.0)


def test_window_loss_validates_bounds():
    import pytest

    with pytest.raises(ValueError):
        WindowLoss(2.0, 1.0)


def test_burst_loss_produces_bursts():
    model = BurstLoss(random.Random(7), p_good_to_bad=0.05, p_bad_to_good=0.3)
    outcomes = [model(frame(), 0.0) for _ in range(2000)]
    drops = sum(outcomes)
    assert 0 < drops < 2000
    # Bursts: the number of drop-runs should be well below the drop count.
    runs = sum(
        1 for i, value in enumerate(outcomes) if value and (i == 0 or not outcomes[i - 1])
    )
    assert runs < drops

"""Pcap writer tests: golden bytes plus an independent round-trip reader.

The reader below is deliberately written from the libpcap/RFC 791/RFC
9293 specs using nothing but ``struct`` — it shares no code with
``repro.net.tcpdump`` — so agreement between the two is real evidence the
files will open in Wireshark/tcpdump.
"""

import io
import struct

from repro.net.addresses import ip, mac
from repro.net.frame import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.arp import ARP_MESSAGE_SIZE, ARP_REQUEST, ArpMessage
from repro.net.tcpdump import PcapWriter, frame_to_bytes, write_pcap
from repro.ip.datagram import PROTO_TCP, PROTO_UDP, IPDatagram
from repro.tcp.constants import FLAG_ACK, FLAG_PSH, FLAG_SYN
from repro.tcp.segment import TCPSegment
from repro.udp.datagram import UDPDatagram
from repro.util.bytespan import RealBytes

SRC_MAC = mac("02:00:00:00:00:02")
DST_MAC = mac("02:00:00:00:00:01")
SRC_IP = ip("10.0.0.99")
DST_IP = ip("10.0.0.1")


def _tcp_frame(segment, datagram_id=7):
    datagram = IPDatagram(SRC_IP, DST_IP, PROTO_TCP, segment, segment.size)
    datagram.datagram_id = datagram_id  # pin the global counter's value
    datagram.ttl = 64
    return EthernetFrame(DST_MAC, SRC_MAC, ETHERTYPE_IPV4, datagram, datagram.size)


def test_frame_to_bytes_golden_syn():
    segment = TCPSegment(40000, 8000, 0, 0, FLAG_SYN, 65535, mss_option=1460)
    raw = frame_to_bytes(_tcp_frame(segment))
    assert raw.hex() == (
        "020000000001020000000002080045 00002c0007400040062662 0a000063"
        "0a000001 9c401f40 00000000 00000000 6002ffff c8420000 020405b4"
    ).replace(" ", "")


def test_pcap_global_and_record_headers_golden():
    buffer = io.BytesIO()
    with PcapWriter(buffer) as writer:
        writer.write_bytes(1.000002, b"\x01\x02\x03")
    data = buffer.getvalue()
    # Global header: magic a1b2c3d4, v2.4, zone 0, sigfigs 0,
    # snaplen 65535, LINKTYPE_ETHERNET (1).
    assert data[:24] == struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
    assert data[24:40] == struct.pack("<IIII", 1, 2, 3, 3)
    assert data[40:] == b"\x01\x02\x03"


def test_pcap_timestamp_rounding_guard():
    buffer = io.BytesIO()
    with PcapWriter(buffer) as writer:
        writer.write_bytes(0.9999999, b"")
    ts_sec, ts_usec, _, _ = struct.unpack_from("<IIII", buffer.getvalue(), 24)
    assert (ts_sec, ts_usec) == (1, 0)


# ---------------------------------------------------------------------------
# Independent pure-struct reader
# ---------------------------------------------------------------------------


def _rfc1071(data):
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _read_pcap(path):
    raw = path.read_bytes()
    magic, major, minor, _, _, snaplen, linktype = struct.unpack_from("<IHHiIII", raw, 0)
    assert magic == 0xA1B2C3D4
    assert (major, minor) == (2, 4)
    assert linktype == 1  # LINKTYPE_ETHERNET
    offset, records = 24, []
    while offset < len(raw):
        ts_sec, ts_usec, incl_len, orig_len = struct.unpack_from("<IIII", raw, offset)
        assert incl_len == orig_len <= snaplen
        offset += 16
        records.append((ts_sec + ts_usec / 1e6, raw[offset : offset + incl_len]))
        offset += incl_len
    assert offset == len(raw)
    return records


def _parse_ethernet(data):
    dst, src, ethertype = struct.unpack_from("!6s6sH", data, 0)
    return dst, src, ethertype, data[14:]


def _parse_ipv4(data):
    (ver_ihl, _, total_len, ident, frags, ttl, proto, checksum, src, dst) = struct.unpack_from(
        "!BBHHHBBH4s4s", data, 0
    )
    assert ver_ihl == 0x45
    assert total_len == len(data)
    assert _rfc1071(data[:20]) == 0  # checksum over the header must verify
    return ident, frags, ttl, proto, src, dst, data[20:]


def _parse_tcp(data, src_ip, dst_ip):
    sport, dport, seq, ackno, offset_flags, flags, window, checksum, _ = struct.unpack_from(
        "!HHIIBBHHH", data, 0
    )
    header_len = (offset_flags >> 4) * 4
    pseudo = src_ip + dst_ip + struct.pack("!BBH", 0, 6, len(data))
    assert _rfc1071(pseudo + data) == 0
    options, cursor, mss = data[20:header_len], 0, None
    while cursor < len(options):
        kind = options[cursor]
        if kind == 0:
            break
        if kind == 1:
            cursor += 1
            continue
        length = options[cursor + 1]
        if kind == 2:
            (mss,) = struct.unpack_from("!H", options, cursor + 2)
        cursor += length
    return sport, dport, seq, ackno, flags, window, mss, data[header_len:]


def test_round_trip_reader(tmp_path):
    data_segment = TCPSegment(
        40000, 8000, 1, 501, FLAG_ACK | FLAG_PSH, 17520, RealBytes(b"drill-bytes"), mss_option=None
    )
    udp = UDPDatagram(9000, 9001, object(), 40)
    udp_datagram = IPDatagram(SRC_IP, DST_IP, PROTO_UDP, udp, udp.size)
    udp_datagram.datagram_id = 8
    arp = ArpMessage(ARP_REQUEST, SRC_IP, SRC_MAC, DST_IP, None)
    frames = [
        (0.25, _tcp_frame(TCPSegment(40000, 8000, 0, 0, FLAG_SYN, 65535, mss_option=1460))),
        (0.5, _tcp_frame(data_segment, datagram_id=9)),
        (0.75, EthernetFrame(DST_MAC, SRC_MAC, ETHERTYPE_IPV4, udp_datagram, udp_datagram.size)),
        (1.0, EthernetFrame(DST_MAC, SRC_MAC, ETHERTYPE_ARP, arp, ARP_MESSAGE_SIZE)),
    ]
    path = tmp_path / "capture.pcap"
    assert write_pcap(str(path), frames) == 4
    records = _read_pcap(path)
    assert [round(t, 6) for t, _ in records] == [0.25, 0.5, 0.75, 1.0]

    # Record 1: the SYN, with its MSS option intact.
    _, _, ethertype, packet = _parse_ethernet(records[0][1])
    assert ethertype == 0x0800
    ident, frags, ttl, proto, src, dst, tcp_bytes = _parse_ipv4(packet)
    assert (ident, frags, ttl, proto) == (7, 0x4000, 64, 6)
    assert (src, dst) == (bytes([10, 0, 0, 99]), bytes([10, 0, 0, 1]))
    sport, dport, seq, ackno, flags, window, mss, payload = _parse_tcp(tcp_bytes, src, dst)
    assert (sport, dport, seq, ackno) == (40000, 8000, 0, 0)
    assert flags == FLAG_SYN and window == 65535 and mss == 1460 and payload == b""

    # Record 2: real payload bytes survive serialisation.
    _, _, _, packet = _parse_ethernet(records[1][1])
    *_, tcp_bytes = _parse_ipv4(packet)
    *_, mss, payload = _parse_tcp(tcp_bytes, bytes([10, 0, 0, 99]), bytes([10, 0, 0, 1]))
    assert mss is None and payload == b"drill-bytes"

    # Record 3: UDP with a verifying checksum and honest length.
    _, _, _, packet = _parse_ethernet(records[2][1])
    ident, _, _, proto, src, dst, udp_bytes = _parse_ipv4(packet)
    assert proto == 17
    usport, udport, ulen, uchecksum = struct.unpack_from("!HHHH", udp_bytes, 0)
    assert (usport, udport, ulen) == (9000, 9001, 48)
    pseudo = src + dst + struct.pack("!BBH", 0, 17, ulen)
    assert _rfc1071(pseudo + udp_bytes) in (0, 0xFFFF)

    # Record 4: ARP request with a zeroed unknown target MAC.
    _, _, ethertype, arp_bytes = _parse_ethernet(records[3][1])
    assert ethertype == 0x0806
    htype, ptype, hlen, plen, op, smac, sip, tmac, tip = struct.unpack_from(
        "!HHBBH6s4s6s4s", arp_bytes, 0
    )
    assert (htype, ptype, hlen, plen, op) == (1, 0x0800, 6, 4, 1)
    assert sip == bytes([10, 0, 0, 99]) and tip == bytes([10, 0, 0, 1])
    assert tmac == bytes(6)

"""Tests for MAC and IPv4 address types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.addresses import (
    MAC_BROADCAST,
    IPAddress,
    MACAddress,
    fresh_multicast_mac,
    fresh_unicast_mac,
    ip,
    mac,
)


def test_mac_parse_and_format():
    address = MACAddress("02:00:00:00:00:01")
    assert str(address) == "02:00:00:00:00:01"
    assert address.value == 0x020000000001


def test_mac_bad_literals_rejected():
    for bad in ("02:00:00:00:00", "zz:00:00:00:00:01", "02:00:00:00:00:100", ""):
        with pytest.raises(AddressError):
            MACAddress(bad)


def test_mac_int_range_checked():
    with pytest.raises(AddressError):
        MACAddress(1 << 48)
    with pytest.raises(AddressError):
        MACAddress(-1)


def test_mac_broadcast_properties():
    assert MAC_BROADCAST.is_broadcast
    assert MAC_BROADCAST.is_multicast  # group bit is set on all-ones


def test_mac_multicast_bit():
    assert MACAddress("01:00:5e:00:00:01").is_multicast
    assert not MACAddress("02:00:00:00:00:01").is_multicast


def test_fresh_macs_are_distinct():
    a, b = fresh_unicast_mac(), fresh_unicast_mac()
    assert a != b
    assert not a.is_multicast
    m = fresh_multicast_mac()
    assert m.is_multicast
    assert not m.is_broadcast


def test_mac_equality_with_string():
    assert MACAddress("02:00:00:00:00:01") == "02:00:00:00:00:01"
    assert MACAddress("02:00:00:00:00:01") != "02:00:00:00:00:02"


def test_mac_hashable():
    table = {MACAddress("02:00:00:00:00:01"): "x"}
    assert table[MACAddress("02:00:00:00:00:01")] == "x"


def test_ip_parse_and_format():
    address = IPAddress("10.0.0.1")
    assert str(address) == "10.0.0.1"
    assert address.value == (10 << 24) | 1


def test_ip_bad_literals_rejected():
    for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "10.0.0.1.2", ""):
        with pytest.raises(AddressError):
            IPAddress(bad)


def test_ip_in_network():
    address = ip("10.0.1.5")
    assert address.in_network(ip("10.0.1.0"), 24)
    assert address.in_network(ip("10.0.0.0"), 16)
    assert not address.in_network(ip("10.0.2.0"), 24)
    assert address.in_network(ip("0.0.0.0"), 0)  # default route matches all


def test_ip_in_network_prefix_validated():
    with pytest.raises(AddressError):
        ip("10.0.0.1").in_network(ip("10.0.0.0"), 33)


def test_ip_ordering_and_equality():
    assert ip("10.0.0.1") < ip("10.0.0.2")
    assert ip("10.0.0.1") == "10.0.0.1"
    assert ip("10.0.0.1") != "10.0.0.2"


def test_coercion_helpers():
    assert ip(ip("1.2.3.4")) == ip("1.2.3.4")
    assert mac(mac("02:00:00:00:00:01")).value == 0x020000000001


@given(st.integers(0, (1 << 32) - 1))
def test_prop_ip_roundtrip(value):
    assert IPAddress(str(IPAddress(value))).value == value


@given(st.integers(0, (1 << 48) - 1))
def test_prop_mac_roundtrip(value):
    assert MACAddress(str(MACAddress(value))).value == value


@given(st.integers(0, (1 << 32) - 1), st.integers(0, 32))
def test_prop_in_network_reflexive(value, prefix):
    address = IPAddress(value)
    assert address.in_network(address, prefix)

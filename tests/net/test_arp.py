"""Tests for ARP: static entries, dynamic resolution, suppression."""

import pytest

from repro.net.addresses import fresh_multicast_mac, ip
from repro.sim.simulator import Simulator

from tests.conftest import LanPair


@pytest.fixture
def lan():
    return LanPair(Simulator(seed=5))


def resolve(host, target_ip, nic):
    results = []
    host.arp.resolve(target_ip, nic, results.append)
    host.sim.run(until=host.sim.now + 2.0)
    return results


def test_static_entry_resolves_synchronously(lan):
    group = fresh_multicast_mac()
    lan.a.arp.add_static(ip("10.0.0.100"), group)
    results = []
    lan.a.arp.resolve(ip("10.0.0.100"), lan.nic_a, results.append)
    assert results == [group]
    assert lan.a.arp.requests_sent == 0


def test_dynamic_resolution_via_request_reply(lan):
    results = resolve(lan.a, lan.ip_b, lan.nic_a)
    assert results == [lan.nic_b.mac]
    assert lan.a.arp.requests_sent == 1
    assert lan.b.arp.replies_sent == 1


def test_resolution_cached_after_first_lookup(lan):
    resolve(lan.a, lan.ip_b, lan.nic_a)
    results = []
    lan.a.arp.resolve(lan.ip_b, lan.nic_a, results.append)
    assert results == [lan.nic_b.mac]
    assert lan.a.arp.requests_sent == 1  # no second request


def test_unresolvable_address_times_out(lan):
    results = resolve(lan.a, ip("10.0.0.99"), lan.nic_a)
    assert results == [None]


def test_concurrent_resolutions_share_one_request(lan):
    results = []
    lan.a.arp.resolve(lan.ip_b, lan.nic_a, results.append)
    lan.a.arp.resolve(lan.ip_b, lan.nic_a, results.append)
    lan.sim.run(until=2.0)
    assert results == [lan.nic_b.mac, lan.nic_b.mac]
    assert lan.a.arp.requests_sent == 1


def test_suppressed_ip_not_answered(lan):
    service = ip("10.0.0.100")
    lan.b.add_vnic("svi", service, lan.nic_b.mac, lan.nic_b)
    lan.b.arp.suppress_ip(service)
    assert resolve(lan.a, service, lan.nic_a) == [None]
    lan.b.arp.unsuppress_ip(service)
    assert resolve(lan.a, service, lan.nic_a) == [lan.nic_b.mac]


def test_multicast_vnic_needs_static_entry():
    """A VNIC with a multicast MAC cannot be resolved dynamically — the
    receiver must not accept a multicast MAC from the wire (RFC 1812),
    which is exactly why the paper pins SVI→SME statically (§3.1)."""
    lan = LanPair(Simulator(seed=6))
    service = ip("10.0.0.100")
    group = fresh_multicast_mac()
    lan.b.add_vnic("svi", service, group, lan.nic_b)
    assert resolve(lan.a, service, lan.nic_a) == [None]
    lan.a.arp.add_static(service, group)
    assert lan.a.arp.lookup(service) == group


def test_vnic_with_unicast_mac_resolves_dynamically(lan):
    service = ip("10.0.0.100")
    lan.b.add_vnic("svi", service, lan.nic_b.mac, lan.nic_b)
    assert resolve(lan.a, service, lan.nic_a) == [lan.nic_b.mac]


def test_multicast_sender_mac_never_cached(lan):
    """Mirrors the RFC 1812 restriction motivating static entries (§3.1)."""
    from repro.net.arp import ARP_REQUEST, ArpMessage

    group = fresh_multicast_mac()
    message = ArpMessage(ARP_REQUEST, ip("10.0.0.50"), group, lan.ip_a)
    lan.a.arp.handle_message(message, lan.nic_a)
    assert lan.a.arp.lookup(ip("10.0.0.50")) is None


def test_requester_learns_from_request(lan):
    """Handling a request caches the sender's (unicast) mapping."""
    from repro.net.arp import ARP_REQUEST, ArpMessage

    message = ArpMessage(ARP_REQUEST, ip("10.0.0.7"), lan.nic_b.mac, lan.ip_a)
    lan.a.arp.handle_message(message, lan.nic_a)
    assert lan.a.arp.lookup(ip("10.0.0.7")) == lan.nic_b.mac


def test_remove_static(lan):
    lan.a.arp.add_static(ip("10.0.0.100"), lan.nic_b.mac)
    lan.a.arp.remove_static(ip("10.0.0.100"))
    assert lan.a.arp.lookup(ip("10.0.0.100")) is None

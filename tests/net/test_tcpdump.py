"""Tests for the tcpdump-style trace renderer."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import IPAddress
from repro.net.tcpdump import (
    PacketDump,
    _checksum,
    _checksum_reference,
    format_segment,
    segment_to_bytes,
)
from repro.sim.datapath import DATAPATH_ENV
from repro.sim.simulator import Simulator
from repro.tcp.constants import FLAG_ACK, FLAG_PSH, FLAG_SYN
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import RealBytes

from tests.conftest import LanPair, run_echo_once


def test_format_segment_syn():
    segment = TCPSegment(1000, 80, 5, 0, FLAG_SYN, 17520, mss_option=1460)
    text = format_segment(segment)
    assert text == "S 5:5(0) win 17520 mss 1460"


def test_format_segment_data():
    segment = TCPSegment(
        1000, 80, 100, 50, FLAG_ACK | FLAG_PSH, 1000, RealBytes(b"x" * 20)
    )
    text = format_segment(segment)
    assert text == "PA 100:120(20) ack 50 win 1000"


def test_format_segment_relative_seq():
    segment = TCPSegment(1, 2, 1010, 0, FLAG_ACK, 100, RealBytes(b"ab"))
    assert "10:12(2)" in format_segment(segment, relative_seq=1000)


def test_packet_dump_captures_connection():
    lan = LanPair(Simulator(seed=130))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b, label="server")
    run_echo_once(lan)
    assert dump.lines_emitted > 0
    text = "\n".join(lines)
    assert ": S " in text  # the SYN arrived at the server
    assert "server" in lines[0]
    # ARP exchange is rendered too.
    assert "ARP" in text


def test_packet_dump_predicate_filters():
    from repro.net.frame import ETHERTYPE_IPV4

    lan = LanPair(Simulator(seed=131))
    lines = []
    dump = PacketDump(
        lan.sim,
        sink=lines.append,
        predicate=lambda frame: frame.ethertype == ETHERTYPE_IPV4,
    )
    dump.attach_host(lan.b)
    run_echo_once(lan)
    assert lines
    assert all("ARP" not in line for line in lines)


def test_packet_dump_detach_restores_handler():
    lan = LanPair(Simulator(seed=132))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b)
    dump.detach_all()
    run_echo_once(lan)  # traffic still flows normally
    assert lines == []


@settings(max_examples=300, deadline=None)
@given(data=st.binary(min_size=0, max_size=400))
def test_checksum_fast_matches_rfc1071_reference(data):
    """The mod-65535 big-int identity gives the same ones-complement
    checksum as the RFC 1071 word loop for every buffer."""
    assert _checksum(data) == _checksum_reference(data)


def _wire_both_arms(segment, src_ip, dst_ip):
    """Serialise the segment under both REPRO_DATAPATH arms."""
    saved = os.environ.get(DATAPATH_ENV)
    try:
        os.environ.pop(DATAPATH_ENV, None)
        fast = segment_to_bytes(segment, src_ip, dst_ip)
        os.environ[DATAPATH_ENV] = "object"
        reference = segment_to_bytes(segment, src_ip, dst_ip)
    finally:
        if saved is None:
            os.environ.pop(DATAPATH_ENV, None)
        else:
            os.environ[DATAPATH_ENV] = saved
    return fast, reference


@settings(max_examples=150, deadline=None)
@given(
    src_port=st.integers(1, 0xFFFF),
    dst_port=st.integers(1, 0xFFFF),
    seq=st.integers(0, 0xFFFFFFFF),
    ack=st.integers(0, 0xFFFFFFFF),
    flags=st.integers(0, 0x3F),
    window=st.integers(0, 0xFFFF),
    payload=st.binary(min_size=0, max_size=200),
    mss=st.one_of(st.none(), st.integers(536, 9000)),
    ip_pair=st.tuples(st.integers(1, 0xFFFFFFFE), st.integers(1, 0xFFFFFFFE)),
)
def test_wire_bytes_identical_across_datapath_arms(
    src_port, dst_port, seq, ack, flags, window, payload, mss, ip_pair
):
    """The cached-prefix incremental serialiser and the full-pack
    reference produce byte-identical wire output (header, options,
    checksum, payload) for arbitrary segments and address pairs."""
    segment = TCPSegment(
        src_port, dst_port, seq, ack, flags, window,
        RealBytes(payload), mss_option=mss,
    )
    src_ip, dst_ip = IPAddress(ip_pair[0]), IPAddress(ip_pair[1])
    fast, reference = _wire_both_arms(segment, src_ip, dst_ip)
    assert fast == reference


def test_udp_rendering():
    lan = LanPair(Simulator(seed=133))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b)
    lan.b.udp.socket(5000)
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 5000), b"hello")
    lan.sim.run(until=1.0)
    udp_lines = [line for line in lines if "UDP" in line]
    assert udp_lines
    assert "6000 > 10.0.0.2.5000" in udp_lines[0]

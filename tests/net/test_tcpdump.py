"""Tests for the tcpdump-style trace renderer."""

from repro.net.tcpdump import PacketDump, format_segment
from repro.sim.simulator import Simulator
from repro.tcp.constants import FLAG_ACK, FLAG_PSH, FLAG_SYN
from repro.tcp.segment import TCPSegment
from repro.util.bytespan import RealBytes

from tests.conftest import LanPair, run_echo_once


def test_format_segment_syn():
    segment = TCPSegment(1000, 80, 5, 0, FLAG_SYN, 17520, mss_option=1460)
    text = format_segment(segment)
    assert text == "S 5:5(0) win 17520 mss 1460"


def test_format_segment_data():
    segment = TCPSegment(
        1000, 80, 100, 50, FLAG_ACK | FLAG_PSH, 1000, RealBytes(b"x" * 20)
    )
    text = format_segment(segment)
    assert text == "PA 100:120(20) ack 50 win 1000"


def test_format_segment_relative_seq():
    segment = TCPSegment(1, 2, 1010, 0, FLAG_ACK, 100, RealBytes(b"ab"))
    assert "10:12(2)" in format_segment(segment, relative_seq=1000)


def test_packet_dump_captures_connection():
    lan = LanPair(Simulator(seed=130))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b, label="server")
    run_echo_once(lan)
    assert dump.lines_emitted > 0
    text = "\n".join(lines)
    assert ": S " in text  # the SYN arrived at the server
    assert "server" in lines[0]
    # ARP exchange is rendered too.
    assert "ARP" in text


def test_packet_dump_predicate_filters():
    from repro.net.frame import ETHERTYPE_IPV4

    lan = LanPair(Simulator(seed=131))
    lines = []
    dump = PacketDump(
        lan.sim,
        sink=lines.append,
        predicate=lambda frame: frame.ethertype == ETHERTYPE_IPV4,
    )
    dump.attach_host(lan.b)
    run_echo_once(lan)
    assert lines
    assert all("ARP" not in line for line in lines)


def test_packet_dump_detach_restores_handler():
    lan = LanPair(Simulator(seed=132))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b)
    dump.detach_all()
    run_echo_once(lan)  # traffic still flows normally
    assert lines == []


def test_udp_rendering():
    lan = LanPair(Simulator(seed=133))
    lines = []
    dump = PacketDump(lan.sim, sink=lines.append)
    dump.attach_nic(lan.nic_b)
    lan.b.udp.socket(5000)
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 5000), b"hello")
    lan.sim.run(until=1.0)
    udp_lines = [line for line in lines if "UDP" in line]
    assert udp_lines
    assert "6000 > 10.0.0.2.5000" in udp_lines[0]

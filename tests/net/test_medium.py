"""Tests for cables and hubs: delivery, serialisation timing, loss."""

import pytest

from repro.net.addresses import fresh_unicast_mac
from repro.net.frame import ETHERNET_MIN_FRAME, ETHERTYPE_IPV4, EthernetFrame
from repro.net.loss import ScriptedLoss
from repro.net.medium import Cable, FrameReceiver, Hub
from repro.sim.simulator import Simulator
from repro.util.units import mbps, transmission_time


class Sink(FrameReceiver):
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive_frame(self, frame):
        self.received.append((self.sim.now, frame))


def make_frame(size=1000):
    return EthernetFrame(
        fresh_unicast_mac(), fresh_unicast_mac(), ETHERTYPE_IPV4, None, size
    )


def test_frame_wire_size_has_overhead_and_minimum():
    assert make_frame(1000).wire_size == 1018
    assert make_frame(10).wire_size == ETHERNET_MIN_FRAME


def test_cable_delivers_with_tx_time_plus_delay():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(sim, a, b, rate_bps=mbps(100), delay=0.001)
    frame = make_frame(1000)
    cable.attachment_a.send(frame)
    sim.run()
    arrival, received = b.received[0]
    assert received is frame
    expected = transmission_time(frame.wire_size, mbps(100)) + 0.001
    assert arrival == pytest.approx(expected)


def test_cable_serialises_back_to_back_frames():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(sim, a, b, rate_bps=mbps(100), delay=0.0)
    frames = [make_frame(1000) for _ in range(3)]
    for frame in frames:
        cable.attachment_a.send(frame)
    sim.run()
    tx = transmission_time(frames[0].wire_size, mbps(100))
    arrivals = [when for when, _ in b.received]
    assert arrivals == pytest.approx([tx, 2 * tx, 3 * tx])


def test_full_duplex_directions_independent():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(sim, a, b, rate_bps=mbps(100), delay=0.0)
    frame_ab = make_frame(1000)
    frame_ba = make_frame(1000)
    cable.attachment_a.send(frame_ab)
    cable.attachment_b.send(frame_ba)
    sim.run()
    tx = transmission_time(frame_ab.wire_size, mbps(100))
    assert b.received[0][0] == pytest.approx(tx)
    assert a.received[0][0] == pytest.approx(tx)  # no shared serialisation


def test_half_duplex_shares_the_medium():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(sim, a, b, rate_bps=mbps(100), delay=0.0, full_duplex=False)
    cable.attachment_a.send(make_frame(1000))
    cable.attachment_b.send(make_frame(1000))
    sim.run()
    tx = transmission_time(make_frame(1000).wire_size, mbps(100))
    assert b.received[0][0] == pytest.approx(tx)
    assert a.received[0][0] == pytest.approx(2 * tx)  # waited for the first


def test_cable_loss_model_drops():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(
        sim, a, b, rate_bps=mbps(100), loss_model=ScriptedLoss(drop_indices=[2])
    )
    for _ in range(3):
        cable.attachment_a.send(make_frame())
    sim.run()
    assert len(b.received) == 2
    assert cable.loss_model.dropped == 1


def test_cable_counters():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    cable = Cable(sim, a, b, rate_bps=mbps(100))
    frame = make_frame(500)
    cable.attachment_a.send(frame)
    sim.run()
    assert cable.frames_carried == 1
    assert cable.bytes_carried == frame.wire_size


def test_cable_rejects_bad_parameters():
    sim = Simulator()
    a, b = Sink(sim), Sink(sim)
    from repro.errors import NetworkError

    with pytest.raises(NetworkError):
        Cable(sim, a, b, rate_bps=0)
    with pytest.raises(NetworkError):
        Cable(sim, a, b, rate_bps=1000, delay=-1)


def test_hub_broadcasts_to_all_but_sender():
    sim = Simulator()
    hub = Hub(sim, rate_bps=mbps(100))
    sinks = [Sink(sim) for _ in range(4)]
    attachments = [hub.attach(sink) for sink in sinks]
    attachments[0].send(make_frame())
    sim.run()
    assert len(sinks[0].received) == 0  # no echo to sender
    assert all(len(sink.received) == 1 for sink in sinks[1:])


def test_hub_serialises_all_senders():
    sim = Simulator()
    hub = Hub(sim, rate_bps=mbps(100))
    a, b, c = Sink(sim), Sink(sim), Sink(sim)
    att_a = hub.attach(a)
    att_b = hub.attach(b)
    hub.attach(c)
    att_a.send(make_frame(1000))
    att_b.send(make_frame(1000))
    sim.run()
    tx = transmission_time(make_frame(1000).wire_size, mbps(100))
    assert [when for when, _ in c.received] == pytest.approx([tx, 2 * tx])


def test_hub_detach_stops_delivery():
    sim = Simulator()
    hub = Hub(sim, rate_bps=mbps(100))
    a, b = Sink(sim), Sink(sim)
    att_a = hub.attach(a)
    att_b = hub.attach(b)
    att_b.detach()
    att_a.send(make_frame())
    sim.run()
    assert b.received == []


class DetachingSink(Sink):
    """Detaches itself from inside its first receive callback."""

    def attached_to(self, attachment):
        self.attachment = attachment

    def receive_frame(self, frame):
        super().receive_frame(frame)
        if self.attachment.attached:
            self.attachment.detach()


def test_hub_detach_during_fanout_keeps_inflight_frames():
    sim = Simulator()
    hub = Hub(sim, rate_bps=mbps(100))
    a, b, c = Sink(sim), DetachingSink(sim), Sink(sim)
    att_a = hub.attach(a)
    hub.attach(b)
    hub.attach(c)
    # Both frames are on the wire before b's detach runs: the detach must
    # not claw back deliveries the fanout already scheduled.
    att_a.send(make_frame())
    att_a.send(make_frame())
    sim.run()
    assert len(b.received) == 2
    assert len(c.received) == 2
    # After the detach, the cached fanout is rebuilt without b.
    att_a.send(make_frame())
    sim.run()
    assert len(b.received) == 2
    assert len(c.received) == 3
    assert a.received == []  # never an echo to the sender


def test_hub_attach_after_traffic_joins_fanout():
    sim = Simulator()
    hub = Hub(sim, rate_bps=mbps(100))
    a, b = Sink(sim), Sink(sim)
    att_a = hub.attach(a)
    hub.attach(b)
    att_a.send(make_frame())
    sim.run()  # fanout snapshot built without the late joiner
    late = Sink(sim)
    hub.attach(late)
    att_a.send(make_frame())
    sim.run()
    assert len(late.received) == 1
    assert len(b.received) == 2

"""SegmentPool lifecycle: refcounted slab reuse never aliases a payload.

The pool's ownership rule — a slab returns to the free list only when
its last span dies — is what makes zero-copy safe.  The hypothesis
suite drives random interleavings of ingest / slice / release with a
fresh-``bytes`` oracle per payload and asserts every *live* span still
reads its original content, no matter how many dead spans' slabs were
reused underneath it.
"""

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.segment_pool import (
    MAX_FREE_SLABS,
    SLAB_SIZE,
    PooledBytes,
    SegmentPool,
    default_pool,
    reset_default_pool,
)
from repro.util.bytespan import EMPTY, RealBytes, span_equal


def _payload(rng_byte: int, length: int) -> bytes:
    return bytes((rng_byte + i) & 0xFF for i in range(length))


# -- basics -----------------------------------------------------------------
def test_ingest_roundtrip():
    pool = SegmentPool()
    span = pool.ingest(b"hello world")
    assert isinstance(span, PooledBytes)
    assert len(span) == 11
    assert span.to_bytes() == b"hello world"
    assert span_equal(span, RealBytes(b"hello world"))


def test_ingest_empty_returns_canonical_empty():
    pool = SegmentPool()
    assert pool.ingest(b"") is EMPTY
    assert pool.segments_pooled == 0


def test_slice_is_zero_copy_view():
    pool = SegmentPool()
    span = pool.ingest(bytes(range(100)))
    part = span.slice(10, 20)
    assert isinstance(part, PooledBytes)
    assert part.to_bytes() == bytes(range(10, 20))
    # Sub-slices keep slicing (retransmit-of-a-retransmit shape).
    assert part.slice(2, 5).to_bytes() == bytes(range(12, 15))


def test_slice_bounds_checked():
    pool = SegmentPool()
    span = pool.ingest(b"abc")
    with pytest.raises(IndexError):
        span.slice(0, 4)
    with pytest.raises(IndexError):
        span.slice(2, 1)


def test_ingest_accepts_memoryview_and_bytearray():
    pool = SegmentPool()
    assert pool.ingest(memoryview(b"abcdef")[1:4]).to_bytes() == b"bcd"
    assert pool.ingest(bytearray(b"xyz")).to_bytes() == b"xyz"


# -- slab lifecycle ---------------------------------------------------------
def test_slab_returns_to_free_list_when_last_span_dies():
    pool = SegmentPool(slab_size=1024, max_free=4)
    span = pool.ingest(b"a" * 100)
    extra = span.slice(0, 50)
    # Force a new current slab so the first one's only keepalive is the
    # spans themselves.
    pool.ingest(b"b" * 1000)
    assert pool.free_slabs() == 0
    del span
    gc.collect()
    assert pool.free_slabs() == 0  # `extra` still holds the slab
    del extra
    gc.collect()
    assert pool.free_slabs() == 1


def test_freed_slab_is_reused():
    pool = SegmentPool(slab_size=512, max_free=4)
    span = pool.ingest(b"x" * 400)
    del span
    pool.ingest(b"y" * 400)  # retires the first slab to the free list
    gc.collect()
    before = pool.slabs_reused
    pool.ingest(b"z" * 400)  # needs a fresh slab: must come from the free list
    assert pool.slabs_reused == before + 1


def test_oversized_payload_gets_dedicated_slab():
    pool = SegmentPool(slab_size=64, max_free=4)
    big = _payload(7, 1000)
    span = pool.ingest(big)
    assert span.to_bytes() == big
    misses_before = pool.pool_misses
    del span
    gc.collect()
    # The dedicated slab is dropped, never pooled: the free list only
    # holds slab_size slabs.
    assert pool.free_slabs() == 0
    assert pool.pool_misses == misses_before


def test_free_list_is_bounded():
    pool = SegmentPool(slab_size=128, max_free=2)
    for round_ in range(6):
        span = pool.ingest(bytes(100))
        del span
        # Force retirement of the current slab each round.
        keeper = pool.ingest(bytes(120))
        del keeper
        gc.collect()
    assert pool.free_slabs() <= 2


def test_default_pool_reset():
    pool = default_pool()
    pool.ingest(b"seed")
    assert default_pool() is pool
    reset_default_pool()
    fresh = default_pool()
    assert fresh is not pool
    assert fresh.segments_pooled == 0
    assert fresh.slab_size == SLAB_SIZE
    assert fresh.max_free == MAX_FREE_SLABS


# -- the aliasing property --------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 255),  # payload seed byte
            st.integers(1, 300),  # payload length
            st.integers(0, 7),  # which live span to release (mod len)
            st.booleans(),  # take a slice of the new span?
        ),
        min_size=1,
        max_size=60,
    ),
    slab_size=st.sampled_from([64, 256, 1024]),
)
def test_reuse_never_aliases_live_payloads(ops, slab_size):
    """Random ingest/slice/release interleavings: every live span always
    reads exactly what the fresh-bytes oracle says it holds, even while
    dead spans' slabs cycle through the free list under it."""
    pool = SegmentPool(slab_size=slab_size, max_free=4)
    live = []  # (span, oracle bytes)
    for seed, length, victim, take_slice in ops:
        data = _payload(seed, length)
        span = pool.ingest(data)
        live.append((span, data))
        if take_slice and length >= 2:
            start, stop = length // 4, length // 4 + length // 2
            live.append((span.slice(start, stop), data[start:stop]))
        if len(live) > 4:
            live.pop(victim % len(live))  # drop a span: its slab may recycle
        for span_i, oracle in live:
            assert span_i.to_bytes() == oracle
    # Release everything: the pool ends with only bounded free slabs.
    live.clear()
    gc.collect()
    assert pool.free_slabs() <= 4


@settings(max_examples=50, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 2000), min_size=1, max_size=30),
    slab_size=st.sampled_from([128, 512]),
)
def test_exhaustion_grows_then_recycles(lengths, slab_size):
    """With no free slabs the pool grows (pool_misses); once spans die,
    steady state is served from the free list, bounded by max_free."""
    pool = SegmentPool(slab_size=slab_size, max_free=3)
    spans = [pool.ingest(bytes(n % 251 for _ in range(n))) for n in lengths]
    pooled = sum(1 for n in lengths if n > 0)
    assert pool.segments_pooled == pooled
    # Growth happened: at least one slab had to be allocated fresh.
    assert pool.pool_misses >= 1
    for span, n in zip(spans, lengths):
        assert len(span) == n
    spans.clear()
    gc.collect()
    assert pool.free_slabs() <= 3

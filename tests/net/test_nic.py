"""Tests for NIC filtering, queuing, VNICs, and power state."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import MAC_BROADCAST, fresh_multicast_mac, fresh_unicast_mac, ip
from repro.net.frame import ETHERTYPE_IPV4, EthernetFrame
from repro.net.loss import ScriptedLoss
from repro.net.medium import Hub
from repro.net.nic import NIC, VirtualInterface
from repro.sim.simulator import Simulator
from repro.util.units import mbps


def make_frame(dst, size=200):
    return EthernetFrame(dst, fresh_unicast_mac(), ETHERTYPE_IPV4, None, size)


@pytest.fixture
def sim():
    return Simulator()


def collect(nic):
    received = []
    nic.set_handler(lambda frame, _nic: received.append(frame))
    return received


def test_accepts_own_mac_and_broadcast(sim):
    nic = NIC(sim)
    received = collect(nic)
    nic.receive_frame(make_frame(nic.mac))
    nic.receive_frame(make_frame(MAC_BROADCAST))
    assert len(received) == 2


def test_filters_foreign_unicast(sim):
    nic = NIC(sim)
    received = collect(nic)
    nic.receive_frame(make_frame(fresh_unicast_mac()))
    assert received == []
    assert nic.rx_dropped_filter == 1


def test_promiscuous_accepts_everything(sim):
    nic = NIC(sim)
    nic.promiscuous = True
    received = collect(nic)
    nic.receive_frame(make_frame(fresh_unicast_mac()))
    assert len(received) == 1


def test_join_and_leave_mac(sim):
    nic = NIC(sim)
    received = collect(nic)
    group = fresh_multicast_mac()
    nic.join_mac(group)
    nic.receive_frame(make_frame(group))
    assert len(received) == 1
    nic.leave_mac(group)
    nic.receive_frame(make_frame(group))
    assert len(received) == 1


def test_cannot_leave_builtin_macs(sim):
    nic = NIC(sim)
    with pytest.raises(NetworkError):
        nic.leave_mac(nic.mac)
    with pytest.raises(NetworkError):
        nic.leave_mac(MAC_BROADCAST)


def test_rx_loss_model_applies(sim):
    nic = NIC(sim, rx_loss_model=ScriptedLoss(drop_indices=[1]))
    received = collect(nic)
    nic.receive_frame(make_frame(nic.mac))
    nic.receive_frame(make_frame(nic.mac))
    assert len(received) == 1
    assert nic.rx_dropped_loss == 1


def test_processing_delay_defers_delivery(sim):
    nic = NIC(sim, processing_delay=0.002)
    received = []
    nic.set_handler(lambda frame, _nic: received.append(sim.now))
    nic.receive_frame(make_frame(nic.mac))
    assert received == []  # not yet
    sim.run()
    assert received == [pytest.approx(0.002)]


def test_rx_queue_overflow_drops(sim):
    nic = NIC(sim, processing_delay=0.010, rx_queue_capacity=2)
    received = collect(nic)
    for _ in range(5):
        nic.receive_frame(make_frame(nic.mac))
    sim.run()
    assert len(received) == 2
    assert nic.rx_dropped_queue == 3


def test_rx_queue_serialises_processing(sim):
    nic = NIC(sim, processing_delay=0.010, rx_queue_capacity=10)
    times = []
    nic.set_handler(lambda frame, _nic: times.append(sim.now))
    nic.receive_frame(make_frame(nic.mac))
    nic.receive_frame(make_frame(nic.mac))
    sim.run()
    assert times == [pytest.approx(0.010), pytest.approx(0.020)]


def test_power_off_blocks_both_directions(sim):
    hub = Hub(sim, rate_bps=mbps(100))
    nic_a, nic_b = NIC(sim, "a"), NIC(sim, "b")
    hub.attach(nic_a)
    hub.attach(nic_b)
    received = collect(nic_b)
    nic_b.power_off()
    nic_a.transmit(make_frame(nic_b.mac))
    sim.run()
    assert received == []
    assert nic_b.rx_dropped_down == 1
    nic_b.power_on()
    nic_a.transmit(make_frame(nic_b.mac))
    sim.run()
    assert len(received) == 1


def test_powered_off_nic_does_not_transmit(sim):
    hub = Hub(sim, rate_bps=mbps(100))
    nic_a, nic_b = NIC(sim, "a"), NIC(sim, "b")
    hub.attach(nic_a)
    hub.attach(nic_b)
    received = collect(nic_b)
    nic_a.power_off()
    nic_a.transmit(make_frame(nic_b.mac))
    sim.run()
    assert received == []
    assert nic_a.tx_frames == 0


def test_transmit_without_medium_is_an_error(sim):
    nic = NIC(sim)
    with pytest.raises(NetworkError):
        nic.transmit(make_frame(fresh_unicast_mac()))


def test_vnic_joins_mac_and_removes(sim):
    nic = NIC(sim)
    received = collect(nic)
    group = fresh_multicast_mac()
    vnic = VirtualInterface("svi", ip("10.0.0.100"), group, nic)
    nic.receive_frame(make_frame(group))
    assert len(received) == 1
    vnic.remove()
    nic.receive_frame(make_frame(group))
    assert len(received) == 1


def test_counters_track_traffic(sim):
    hub = Hub(sim, rate_bps=mbps(100))
    nic_a, nic_b = NIC(sim, "a"), NIC(sim, "b")
    hub.attach(nic_a)
    hub.attach(nic_b)
    collect(nic_b)
    frame = make_frame(nic_b.mac, size=300)
    nic_a.transmit(frame)
    sim.run()
    assert nic_a.tx_frames == 1
    assert nic_a.tx_bytes == frame.wire_size
    assert nic_b.rx_frames == 1
    assert nic_b.rx_bytes == frame.wire_size

"""Tests for the learning switch: forwarding, multicast groups, mirroring."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import MAC_BROADCAST, fresh_multicast_mac, fresh_unicast_mac
from repro.net.frame import ETHERTYPE_IPV4, EthernetFrame
from repro.net.medium import Cable, FrameReceiver
from repro.net.switch import Switch
from repro.sim.simulator import Simulator
from repro.util.units import mbps


class Station(FrameReceiver):
    def __init__(self, sim, switch):
        self.sim = sim
        self.mac = fresh_unicast_mac()
        self.received = []
        self.port = switch.new_port()
        self.cable = Cable(sim, self, self.port, rate_bps=mbps(100))

    def receive_frame(self, frame):
        self.received.append(frame)

    def send(self, dst_mac, size=500):
        frame = EthernetFrame(dst_mac, self.mac, ETHERTYPE_IPV4, None, size)
        self.cable.attachment_a.send(frame)
        return frame


@pytest.fixture
def fabric():
    sim = Simulator()
    switch = Switch(sim)
    stations = [Station(sim, switch) for _ in range(4)]
    return sim, switch, stations


def test_unknown_unicast_floods(fabric):
    sim, switch, stations = fabric
    stations[0].send(fresh_unicast_mac())
    sim.run()
    assert all(len(s.received) == 1 for s in stations[1:])
    assert switch.frames_flooded == 1


def test_learning_forwards_to_single_port(fabric):
    sim, switch, stations = fabric
    a, b, c, d = stations
    # b talks first so the switch learns b's port.
    b.send(a.mac)
    sim.run()
    a.received.clear()
    c.received.clear()
    d.received.clear()
    a.send(b.mac)
    sim.run()
    assert len(b.received) == 1
    assert c.received == [] and d.received == []


def test_broadcast_reaches_everyone(fabric):
    sim, switch, stations = fabric
    stations[0].send(MAC_BROADCAST)
    sim.run()
    assert all(len(s.received) == 1 for s in stations[1:])
    assert stations[0].received == []


def test_registered_multicast_goes_to_group_only(fabric):
    sim, switch, stations = fabric
    a, b, c, d = stations
    group = fresh_multicast_mac()
    switch.join_multicast(group, b.port)
    switch.join_multicast(group, c.port)
    a.send(group)
    sim.run()
    assert len(b.received) == 1
    assert len(c.received) == 1
    assert d.received == []


def test_unregistered_multicast_floods(fabric):
    sim, switch, stations = fabric
    stations[0].send(fresh_multicast_mac())
    sim.run()
    assert all(len(s.received) == 1 for s in stations[1:])


def test_leave_multicast(fabric):
    sim, switch, stations = fabric
    a, b, c, d = stations
    group = fresh_multicast_mac()
    switch.join_multicast(group, b.port)
    switch.leave_multicast(group, b.port)
    a.send(group)
    sim.run()
    # Empty group → unregistered → flood.
    assert len(b.received) == 1 and len(c.received) == 1


def test_join_multicast_rejects_unicast_mac(fabric):
    _sim, switch, stations = fabric
    with pytest.raises(NetworkError):
        switch.join_multicast(fresh_unicast_mac(), stations[0].port)


def test_port_mirroring_copies_ingress_and_egress(fabric):
    sim, switch, stations = fabric
    a, b, monitor, d = stations
    # Learn ports first.
    a.send(b.mac)
    b.send(a.mac)
    sim.run()
    for station in stations:
        station.received.clear()
    switch.mirror_port(a.port, monitor.port)
    # Ingress at a's port (a sends) must be mirrored.
    a.send(b.mac)
    sim.run()
    assert len(monitor.received) == 1
    # Egress through a's port (b sends to a) must be mirrored too.
    b.send(a.mac)
    sim.run()
    assert len(monitor.received) == 2
    assert d.received == []


def test_mirror_to_self_rejected(fabric):
    _sim, switch, stations = fabric
    with pytest.raises(NetworkError):
        switch.mirror_port(stations[0].port, stations[0].port)


def test_unmirror(fabric):
    sim, switch, stations = fabric
    a, b, monitor, _ = stations
    switch.mirror_port(a.port, monitor.port)
    switch.unmirror_port(a.port, monitor.port)
    a.send(b.mac)
    sim.run()
    # b unknown → flood reaches monitor anyway; use learned path instead.
    monitor.received.clear()
    b.send(a.mac)
    sim.run()
    a.received.clear()
    a.send(b.mac)
    sim.run()
    assert monitor.received == []


def test_foreign_port_rejected():
    sim = Simulator()
    switch_a, switch_b = Switch(sim, "a"), Switch(sim, "b")
    port_b = switch_b.new_port()
    with pytest.raises(NetworkError):
        switch_a.join_multicast(fresh_multicast_mac(), port_b)


def test_forwarding_delay_applied():
    sim = Simulator()
    switch = Switch(sim, forwarding_delay=0.005)
    a = Station(sim, switch)
    b = Station(sim, switch)
    a.send(MAC_BROADCAST)
    sim.run()
    assert sim.now >= 0.005
    assert len(b.received) == 1

"""Fabric-level STONITH: serialization, coalescing, sabotage accounting."""

from repro.cluster.arbiter import ClusterArbiter
from repro.sim.simulator import Simulator


class FakeHost:
    def __init__(self, name):
        self.name = name
        self.is_up = True
        self.crashes = 0

    def crash(self):
        self.is_up = False
        self.crashes += 1


def make(delay=0.010, seed=1):
    sim = Simulator(seed=seed)
    return sim, ClusterArbiter(sim, actuation_delay=delay)


def test_single_cut_after_actuation_delay():
    sim, arbiter = make()
    host = FakeHost("p0")
    fired = []
    arbiter.cut_power(host, lambda: fired.append(sim.now))
    sim.run(until=0.009)
    assert host.is_up and not fired  # the relay is still actuating
    sim.run(until=0.011)
    assert not host.is_up
    assert fired == [0.010]
    assert arbiter.cuts_performed == 1
    assert arbiter.fence_requests == 1


def test_concurrent_fences_are_serialized():
    sim, arbiter = make()
    a, b = FakeHost("p0"), FakeHost("p1")
    times = {}
    arbiter.cut_power(a, lambda: times.setdefault("a", sim.now))
    arbiter.cut_power(b, lambda: times.setdefault("b", sim.now))
    sim.run(until=0.1)
    assert not a.is_up and not b.is_up
    # One actuator: the second cut lands a full actuation later.
    assert times["b"] - times["a"] == arbiter.actuation_delay
    assert arbiter.max_queue_depth == 1
    assert arbiter.cuts_performed == 2


def test_storm_requests_coalesce_per_host():
    sim, arbiter = make()
    host = FakeHost("p0")
    fired = []
    for index in range(5):
        arbiter.cut_power(host, lambda index=index: fired.append(index))
    sim.run(until=0.1)
    # Five suspicious backups, one relay actuation — every waiter fires.
    assert host.crashes == 1
    assert sorted(fired) == [0, 1, 2, 3, 4]
    assert arbiter.fence_requests == 5
    assert arbiter.requests_coalesced == 4
    assert arbiter.cuts_performed == 1


def test_fencing_a_dead_host_still_completes():
    sim, arbiter = make()
    host = FakeHost("p0")
    host.is_up = False
    done = []
    arbiter.cut_power(host, lambda: done.append(True))
    sim.run(until=0.1)
    assert done == [True]
    assert host.crashes == 0  # no double kill
    assert arbiter.cuts_performed == 1


def test_sabotaged_arbiter_acknowledges_without_cutting():
    sim, arbiter = make()
    arbiter.sabotaged = True
    host = FakeHost("p0")
    done = []
    arbiter.cut_power(host, lambda: done.append(True))
    sim.run(until=0.1)
    assert host.is_up  # the mutation hook: acked, never actuated
    assert done == [True]
    assert arbiter.cuts_performed == 0
    assert arbiter.fence_requests == 1


def test_queue_drains_in_fifo_order():
    sim, arbiter = make()
    hosts = [FakeHost(f"p{i}") for i in range(4)]
    order = []
    for host in hosts:
        arbiter.cut_power(host, lambda h=host: order.append(h.name))
    sim.run(until=1.0)
    assert order == ["p0", "p1", "p2", "p3"]
    assert arbiter.max_queue_depth == 3

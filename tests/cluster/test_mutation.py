"""Mutation checks: the cluster safety nets must *fail* when sabotaged.

The dual-primary drill (t30) passing proves nothing unless disabling
fencing makes it fail; likewise the election drill (t28) must fail when
the pool refuses to elect.  Each case here breaks one load-bearing piece
of the cluster failover path and asserts the matching drill catches it.
"""

from pathlib import Path

from repro.cluster.arbiter import ClusterArbiter
from repro.cluster.pool import BackupPool
from repro.drill import run_drill_file

SCRIPTS = Path(__file__).parent.parent / "drill" / "scripts"


def _sabotage_arbiter(monkeypatch):
    # The fabric resets ``sabotaged`` from the scenario spec after
    # construction, so flipping the instance attribute in __init__ would
    # be overwritten; a read-always-True property with a no-op setter
    # models an actuator wired to nothing regardless of configuration.
    monkeypatch.setattr(
        ClusterArbiter,
        "sabotaged",
        property(lambda self: True, lambda self, value: None),
        raising=False,  # instance attribute only; shadow it at the class
    )


def test_sabotaged_arbiter_breaks_dual_primary_drill(monkeypatch):
    # With the actuator disabled the arbiter still acknowledges fence
    # requests, so the takeover proceeds against a live primary — the
    # dual-primary monitor must catch the overlap and fail t30.
    _sabotage_arbiter(monkeypatch)
    result = run_drill_file(SCRIPTS / "t30_cluster_asymmetric_partition.py")
    assert not result.passed
    assert "dual primary" in (result.failure or "")


def test_sabotaged_arbiter_breaks_promotion_drill(monkeypatch):
    # Same sabotage, different witness: t28's primary genuinely crashed,
    # so no dual-primary arises — the fence accounting must catch the
    # unfenced takeover instead.
    _sabotage_arbiter(monkeypatch)
    result = run_drill_file(SCRIPTS / "t28_cluster_pool_promotion.py")
    assert not result.passed
    assert "without a fence" in (result.failure or "")


def test_refused_election_breaks_promotion_drill(monkeypatch):
    # A pool that never elects leaves the taken-over service without a
    # replacement backup; t28's convergence probe must notice.
    monkeypatch.setattr(BackupPool, "elect", lambda self, service, exclude=(): None)
    result = run_drill_file(SCRIPTS / "t28_cluster_pool_promotion.py")
    assert not result.passed
    assert "replacement" in (result.failure or "")


def test_drills_pass_unmutated():
    # Guard against vacuous mutation results: the same scripts pass when
    # nothing is sabotaged (also covered by the conformance corpus).
    for name in (
        "t28_cluster_pool_promotion.py",
        "t30_cluster_asymmetric_partition.py",
    ):
        result = run_drill_file(SCRIPTS / name)
        assert result.passed, f"\n{result.failure}"

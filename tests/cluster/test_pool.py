"""Backup-pool bookkeeping: planning, consumption, deterministic elections."""

import pytest

from repro.cluster.pool import BackupPool, plan_assignment
from repro.errors import ConfigurationError


class TestPlanAssignment:
    def test_round_robin_least_loaded(self):
        plan = plan_assignment(["s0", "s1", "s2"], ["pool0", "pool1"], 2)
        assert plan == {"pool0": ["s0", "s2"], "pool1": ["s1"]}

    def test_ties_break_on_name(self):
        plan = plan_assignment(["s0"], ["pool1", "pool0"], 1)
        assert plan["pool0"] == ["s0"]
        assert plan["pool1"] == []

    def test_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            plan_assignment(["s0", "s1", "s2"], ["pool0"], 2)

    def test_bad_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            plan_assignment(["s0"], ["pool0"], 0)


class TestBackupPool:
    def make(self, backups=("pool0", "pool1", "pool2"), capacity=2):
        return BackupPool(backups, capacity)

    def test_assign_and_query(self):
        pool = self.make()
        pool.assign("s0", "pool0")
        pool.assign("s1", "pool0")
        assert pool.backup_of("s0") == "pool0"
        assert pool.load("pool0") == 2
        assert pool.free_slots() == 4

    def test_capacity_enforced(self):
        pool = self.make(capacity=1)
        pool.assign("s0", "pool0")
        with pytest.raises(ConfigurationError):
            pool.assign("s1", "pool0")

    def test_double_assignment_rejected(self):
        pool = self.make()
        pool.assign("s0", "pool0")
        with pytest.raises(ConfigurationError):
            pool.assign("s0", "pool1")

    def test_release_returns_ex_backup(self):
        pool = self.make()
        pool.assign("s0", "pool0")
        assert pool.release("s0") == "pool0"
        assert pool.backup_of("s0") is None
        assert pool.release("s0") is None

    def test_consume_orphans_and_is_idempotent(self):
        pool = self.make()
        pool.assign("s0", "pool0")
        pool.assign("s2", "pool0")
        assert pool.consume("pool0") == ["s0", "s2"]
        assert pool.consume("pool0") == []
        assert "pool0" in pool.consumed
        with pytest.raises(ConfigurationError):
            pool.assign("s3", "pool0")

    def test_consume_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().consume("nope")

    def test_elect_least_loaded_live(self):
        pool = self.make()
        pool.assign("s0", "pool0")
        pool.assign("s1", "pool1")
        pool.assign("s2", "pool1")  # pool1 full
        pool.consume("pool2")
        # pool0 (load 1) is the only live host with a free slot.
        assert pool.elect("s3") == "pool0"
        assert pool.backup_of("s3") == "pool0"
        assert pool.elections_held == 1
        assert pool.elections_failed == 0

    def test_elect_honours_exclude_and_ties(self):
        pool = self.make()
        assert pool.elect("s0", exclude=["pool0"]) == "pool1"

    def test_elect_exhausted(self):
        pool = self.make(backups=("pool0",), capacity=1)
        pool.consume("pool0")
        assert pool.elect("s0") is None
        assert pool.elections_failed == 1

    def test_summary_is_jsonable(self):
        import json

        pool = self.make()
        pool.assign("s0", "pool1")
        pool.consume("pool2")
        summary = pool.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["assignments"]["pool1"] == ["s0"]
        assert summary["consumed"] == ["pool2"]

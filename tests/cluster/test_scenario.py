"""Scenario loading: schema validation fails loudly, round-trips cleanly."""

import dataclasses
import json

import pytest

from repro.cluster.scenario import load_scenario, spec_from_dict, spec_from_params
from repro.errors import ConfigurationError

MINIMAL = {"name": "t", "primaries": 2, "backups": 2}


def test_minimal_document_fills_defaults():
    spec = spec_from_dict(MINIMAL)
    assert spec.capacity == 1
    assert spec.service_names() == ["s0", "s1"]
    assert spec.backup_names() == ["pool0", "pool1"]
    assert spec.sttcp_config(1).channel_port == 39001


def test_params_round_trip():
    spec = spec_from_dict(
        {
            **MINIMAL,
            "capacity": 2,
            "sttcp": {"hb_interval": 0.04},
            "workload": {"exchanges": 50, "service_time": 0.01},
            "crash": {"primary": 1, "at": 0.3},
            "arbiter": {"actuation_delay": 0.02, "sabotaged": True},
        }
    )
    rebuilt = spec_from_params(json.loads(json.dumps(spec.params())))
    assert rebuilt == spec


def test_unknown_top_level_key_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario key"):
        spec_from_dict({**MINIMAL, "primarys": 3})


def test_unknown_sttcp_key_rejected():
    with pytest.raises(ConfigurationError, match="unknown sttcp key"):
        spec_from_dict({**MINIMAL, "sttcp": {"hb_intervall": 0.1}})


def test_channel_port_not_scriptable():
    # Per-service ports are derived; a scenario overriding them could
    # alias two engines onto one socket.
    with pytest.raises(ConfigurationError):
        spec_from_dict({**MINIMAL, "sttcp": {"channel_port": 40000}})


def test_pool_must_fit():
    with pytest.raises(ConfigurationError, match="do not fit"):
        spec_from_dict({"name": "t", "primaries": 5, "backups": 2, "capacity": 2})


def test_crash_primary_in_range():
    with pytest.raises(ConfigurationError, match="crash.primary"):
        spec_from_dict({**MINIMAL, "crash": {"primary": 2}})


def test_unknown_profile_rejected():
    with pytest.raises(ConfigurationError, match="unknown profile"):
        spec_from_dict({**MINIMAL, "profile": "wan"})


class TestAssignmentValidation:
    BASE = {"name": "t", "primaries": 2, "backups": 2, "capacity": 2}

    def test_explicit_assignment_accepted(self):
        spec = spec_from_dict(
            {**self.BASE, "assignment": {"pool0": ["s0", "s1"], "pool1": []}}
        )
        assert spec.assignment == {"pool0": ["s0", "s1"], "pool1": []}

    def test_unknown_backup_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backup"):
            spec_from_dict({**self.BASE, "assignment": {"pool9": ["s0"]}})

    def test_unknown_service_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown service"):
            spec_from_dict(
                {**self.BASE, "assignment": {"pool0": ["s7"], "pool1": ["s0", "s1"]}}
            )

    def test_double_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="assigned twice"):
            spec_from_dict(
                {**self.BASE, "assignment": {"pool0": ["s0"], "pool1": ["s0", "s1"]}}
            )

    def test_overload_rejected(self):
        with pytest.raises(ConfigurationError, match="overloads"):
            spec_from_dict(
                {
                    "name": "t",
                    "primaries": 3,
                    "backups": 3,
                    "assignment": {"pool0": ["s0", "s1"], "pool1": ["s2"], "pool2": []},
                }
            )

    def test_unshadowed_service_rejected(self):
        with pytest.raises(ConfigurationError, match="unshadowed"):
            spec_from_dict({**self.BASE, "assignment": {"pool0": ["s0"], "pool1": []}})


def test_shipped_scenarios_load():
    from pathlib import Path

    shipped = Path(__file__).parent.parent.parent / "configs" / "cluster"
    names = sorted(p.stem for p in shipped.glob("*.json"))
    assert names == ["smoke", "storm", "trio"]
    for path in shipped.glob("*.json"):
        spec = load_scenario(path)
        assert spec.name == path.stem


def test_load_errors_carry_the_path(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ConfigurationError, match="bad.json"):
        load_scenario(bad)
    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"name": "x", "primaries": 1}))
    with pytest.raises(ConfigurationError, match="invalid.json"):
        load_scenario(invalid)


def test_spec_is_frozen():
    spec = spec_from_dict(MINIMAL)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.primaries = 9

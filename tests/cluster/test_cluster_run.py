"""End-to-end cluster runs: invariants, elections, record shape, determinism."""

import json

import pytest

from repro.cluster import run_cluster, spec_from_dict


def run(doc):
    return run_cluster(spec_from_dict(doc))


@pytest.fixture(scope="module")
def smoke_record():
    return run(
        {
            "name": "unit-smoke",
            "primaries": 2,
            "backups": 2,
            "capacity": 2,
            "workload": {"exchanges": 60, "service_time": 0.005},
            "crash": {"primary": 0, "at": 0.25},
            "deadline": 10.0,
        }
    )


def test_all_invariants_hold(smoke_record):
    invariants = smoke_record["invariants"]
    assert invariants["no_dual_primary"]
    assert invariants["exactly_once_streams"]
    assert invariants["bounded_takeover"]
    assert invariants["bounded_election"]
    assert smoke_record["ok"]


def test_every_client_verified(smoke_record):
    assert smoke_record["clients_verified"]
    assert [p["verified"] for p in smoke_record["pairs"]] == [True, True]


def test_takeover_latency_within_budget(smoke_record):
    assert 0 < smoke_record["detection_latency"] <= smoke_record["takeover_latency"]
    assert (
        smoke_record["takeover_latency"]
        <= smoke_record["invariants"]["takeover_budget"]
    )


def test_election_replaced_the_consumed_backup(smoke_record):
    (election,) = smoke_record["elections"]
    assert election["kind"] == "takeover"
    assert election["consumed_backup"] == "pool0"
    assert election["new_backup"] == "pool1"
    assert election["sync_latency"] is not None
    assert smoke_record["pool"]["consumed"] == ["pool0"]


def test_arbiter_fenced_exactly_once(smoke_record):
    assert smoke_record["arbiter"]["cuts_performed"] == 1
    assert not smoke_record["arbiter"]["sabotaged"]


def test_crashed_pair_gets_phase_timeline(smoke_record):
    timeline = smoke_record["timelines"]["s0"]
    assert timeline["outage"] > 0
    assert set(timeline["phases"]) == {"detection", "takeover", "recovery"}
    # Healthy pairs report only their progress gap.
    assert set(smoke_record["timelines"]["s1"]) == {"max_gap"}
    assert smoke_record["timelines"]["s1"]["max_gap"] < timeline["outage"]


def test_record_is_jsonable(smoke_record):
    assert json.loads(json.dumps(smoke_record)) == smoke_record


def test_runs_are_deterministic():
    doc = {
        "name": "unit-det",
        "primaries": 2,
        "backups": 2,
        "capacity": 2,
        "workload": {"exchanges": 40, "service_time": 0.005},
        "crash": {"at": 0.2},
        "deadline": 10.0,
    }
    assert run(doc) == run(doc)


def test_orphan_reelection():
    # pool0 shadows both s0 and s2; s0's takeover consumes it and orphans
    # s2, which must be re-elected onto a live pool host and re-synced.
    record = run(
        {
            "name": "unit-orphan",
            "primaries": 3,
            "backups": 3,
            "capacity": 2,
            "assignment": {"pool0": ["s0", "s2"], "pool1": ["s1"], "pool2": []},
            "workload": {"exchanges": 60, "service_time": 0.005},
            "crash": {"primary": 0, "at": 0.25},
            "deadline": 10.0,
        }
    )
    assert record["ok"]
    kinds = {e["service"]: e["kind"] for e in record["elections"]}
    assert kinds == {"s0": "takeover", "s2": "orphan"}
    assert all(e["sync_latency"] is not None for e in record["elections"])
    assert record["retired_services"] == 1


def test_sabotaged_arbiter_fails_the_run_record():
    # Scenario-level sabotage: requests acked, never actuated.  The crash
    # is real so no dual-primary arises, but the fence never lands and
    # the gap-recovery path must still converge the takeover; the run
    # record keeps the sabotage visible either way.
    record = run(
        {
            "name": "unit-sabotage",
            "primaries": 1,
            "backups": 1,
            "workload": {"exchanges": 40, "service_time": 0.005},
            "crash": {"at": 0.2},
            "arbiter": {"sabotaged": True},
            "deadline": 10.0,
        }
    )
    assert record["arbiter"]["sabotaged"]
    assert record["arbiter"]["cuts_performed"] == 0
    assert record["arbiter"]["fence_requests"] == 1


def test_single_pair_cluster_matches_paper_shape():
    # The degenerate 1:1 cluster is the paper's own topology; it must
    # fail over cleanly through the same fabric code path.
    record = run(
        {
            "name": "unit-pair",
            "primaries": 1,
            "backups": 1,
            "workload": {"exchanges": 60, "service_time": 0.005},
            "crash": {"at": 0.25},
            "deadline": 10.0,
        }
    )
    assert record["clients_verified"]
    assert record["invariants"]["no_dual_primary"]
    assert record["invariants"]["bounded_takeover"]
    # A 1-backup pool cannot elect a replacement: recorded, not raised.
    (election,) = record["elections"]
    assert election["new_backup"] is None

"""Tests for fault injection helpers."""

import pytest

from repro.faults.injection import (
    CrashInjector,
    add_tap_loss,
    add_tap_outage,
    clear_loss,
    partition_channel,
)
from repro.net.loss import NoLoss, RandomLoss, WindowLoss
from repro.sim.simulator import Simulator

from tests.conftest import LanPair


@pytest.fixture
def lan():
    return LanPair(Simulator(seed=71))


def test_crash_at_absolute_time(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.b, 2.5)
    lan.sim.run(until=2.0)
    assert lan.b.is_up
    lan.sim.run(until=3.0)
    assert not lan.b.is_up
    assert injector.crashes_performed == 1


def test_crash_after_delay(lan):
    injector = CrashInjector(lan.sim)
    lan.sim.run(until=1.0)
    injector.crash_after(lan.b, 0.5)
    lan.sim.run(until=2.0)
    assert lan.b.crashed_at == pytest.approx(1.5)


def test_cancel_all_scheduled_crashes(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.a, 1.0)
    injector.crash_at(lan.b, 1.0)
    injector.cancel_all()
    lan.sim.run(until=2.0)
    assert lan.a.is_up and lan.b.is_up


def test_add_tap_loss_installs_model(lan):
    rng = lan.sim.random.stream("x")
    model = add_tap_loss(lan.nic_b, rng, 0.5)
    assert lan.nic_b.rx_loss_model is model
    assert isinstance(model, RandomLoss)


def test_add_tap_outage_installs_window(lan):
    model = add_tap_outage(lan.nic_b, 1.0, 2.0)
    assert isinstance(model, WindowLoss)
    assert lan.nic_b.rx_loss_model is model


def test_clear_loss(lan):
    add_tap_outage(lan.nic_b, 1.0, 2.0)
    clear_loss(lan.nic_b)
    assert lan.nic_b.rx_loss_model is None
    partition_channel(lan.hub, 39000)
    clear_loss(lan.hub)
    assert isinstance(lan.hub.loss_model, NoLoss)


def test_partition_channel_drops_only_channel_traffic(lan):
    partition_channel(lan.hub, 39000)
    channel_received = []
    other_received = []
    chan = lan.b.udp.socket(39000)
    chan.on_datagram = lambda payload, addr: channel_received.append(payload)
    other = lan.b.udp.socket(5000)
    other.on_datagram = lambda payload, addr: other_received.append(payload)
    sender_chan = lan.a.udp.socket(39000)
    sender_other = lan.a.udp.socket(5001)
    sender_chan.send_to((lan.ip_b, 39000), b"hb")
    sender_other.send_to((lan.ip_b, 5000), b"data")
    lan.sim.run(until=1.0)
    assert channel_received == []
    assert len(other_received) == 1

"""Tests for fault injection helpers."""

import pytest

from repro.faults.injection import (
    CrashInjector,
    add_tap_loss,
    add_tap_outage,
    clear_loss,
    partition_channel,
)
from repro.net.loss import NoLoss, RandomLoss, WindowLoss
from repro.sim.simulator import Simulator

from tests.conftest import LanPair


@pytest.fixture
def lan():
    return LanPair(Simulator(seed=71))


def test_crash_at_absolute_time(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.b, 2.5)
    lan.sim.run(until=2.0)
    assert lan.b.is_up
    lan.sim.run(until=3.0)
    assert not lan.b.is_up
    assert injector.crashes_performed == 1


def test_crash_after_delay(lan):
    injector = CrashInjector(lan.sim)
    lan.sim.run(until=1.0)
    injector.crash_after(lan.b, 0.5)
    lan.sim.run(until=2.0)
    assert lan.b.crashed_at == pytest.approx(1.5)


def test_cancel_all_scheduled_crashes(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.a, 1.0)
    injector.crash_at(lan.b, 1.0)
    injector.cancel_all()
    lan.sim.run(until=2.0)
    assert lan.a.is_up and lan.b.is_up


def test_add_tap_loss_installs_model(lan):
    rng = lan.sim.random.stream("x")
    model = add_tap_loss(lan.nic_b, rng, 0.5)
    assert lan.nic_b.rx_loss_model is model
    assert isinstance(model, RandomLoss)


def test_add_tap_outage_installs_window(lan):
    model = add_tap_outage(lan.nic_b, 1.0, 2.0)
    assert isinstance(model, WindowLoss)
    assert lan.nic_b.rx_loss_model is model


def test_clear_loss(lan):
    add_tap_outage(lan.nic_b, 1.0, 2.0)
    clear_loss(lan.nic_b)
    assert lan.nic_b.rx_loss_model is None
    partition_channel(lan.hub, 39000)
    clear_loss(lan.hub)
    assert isinstance(lan.hub.loss_model, NoLoss)


def test_partition_channel_drops_only_channel_traffic(lan):
    partition_channel(lan.hub, 39000)
    channel_received = []
    other_received = []
    chan = lan.b.udp.socket(39000)
    chan.on_datagram = lambda payload, addr: channel_received.append(payload)
    other = lan.b.udp.socket(5000)
    other.on_datagram = lambda payload, addr: other_received.append(payload)
    sender_chan = lan.a.udp.socket(39000)
    sender_other = lan.a.udp.socket(5001)
    sender_chan.send_to((lan.ip_b, 39000), b"hb")
    sender_other.send_to((lan.ip_b, 5000), b"data")
    lan.sim.run(until=1.0)
    assert channel_received == []
    assert len(other_received) == 1


# ---------------------------------------------------------------------------
# Arming/firing order and idempotency
# ---------------------------------------------------------------------------


def test_crashes_fire_in_time_order_regardless_of_arming_order(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.b, 2.0)  # armed first, fires second
    injector.crash_at(lan.a, 1.0)
    lan.sim.run(until=3.0)
    assert lan.a.crashed_at == pytest.approx(1.0)
    assert lan.b.crashed_at == pytest.approx(2.0)
    assert injector.crashes_performed == 2


def test_rearming_a_crash_is_idempotent(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.b, 1.0)
    injector.crash_at(lan.b, 1.5)  # second crash of a dead host: no-op
    lan.sim.run(until=2.0)
    assert injector.crashes_performed == 2
    assert lan.b.crashed_at == pytest.approx(1.0)  # first crash time sticks
    assert not lan.b.is_up


def test_cancel_all_clears_the_schedule_for_reuse(lan):
    injector = CrashInjector(lan.sim)
    injector.crash_at(lan.a, 1.0)
    injector.cancel_all()
    assert injector.scheduled == []
    injector.crash_at(lan.a, 2.0)  # re-arming after cancel works
    lan.sim.run(until=3.0)
    assert injector.crashes_performed == 1


# ---------------------------------------------------------------------------
# Drill-DSL fault binding
# ---------------------------------------------------------------------------


def test_apply_drill_fault_rejects_unknown_name(lan):
    from repro.faults.injection import apply_drill_fault

    class Env:
        sim = lan.sim

    with pytest.raises(ValueError, match="unknown fault 'typo'.*primary_crash"):
        apply_drill_fault("typo", Env(), 1.0)


def test_apply_drill_fault_requires_matching_topology(lan):
    from repro.faults.injection import apply_drill_fault

    class Env:  # a server-mode env: no primary/backup pair
        sim = lan.sim
        crash_injector = CrashInjector(lan.sim)
        primary = None

    with pytest.raises(ValueError, match="sttcp mode"):
        apply_drill_fault("tap_outage", Env(), 1.0)


def test_drill_fault_crashes_the_bound_host(lan):
    from repro.faults.injection import apply_drill_fault

    class Env:
        sim = lan.sim
        crash_injector = CrashInjector(lan.sim)
        primary = lan.b

    apply_drill_fault("primary_crash", Env(), 0.5)
    lan.sim.run(until=1.0)
    assert lan.b.crashed_at == pytest.approx(0.5)


def test_drill_fault_registry_covers_the_documented_set():
    from repro.faults.injection import DRILL_FAULTS

    assert {
        "primary_crash",
        "backup_crash",
        "hut_crash",
        "tap_outage",
        "tap_loss",
        "channel_partition",
        "channel_partition_oneway",
        "channel_heal",
        "power_kill",
    } <= set(DRILL_FAULTS)


def test_partition_channel_oneway_drops_only_senders_direction(lan):
    from repro.faults.injection import partition_channel_oneway

    partition_channel_oneway(lan.hub, 39000, lan.ip_a)
    at_a, at_b = [], []
    lan.a.udp.socket(39000).on_datagram = lambda payload, addr: at_a.append(payload)
    lan.b.udp.socket(39000).on_datagram = lambda payload, addr: at_b.append(payload)
    lan.a.udp.socket(5001).send_to((lan.ip_b, 39000), b"a-to-b")
    lan.b.udp.socket(5002).send_to((lan.ip_a, 39000), b"b-to-a")
    lan.sim.run(until=1.0)
    assert at_b == []  # host a's channel frames are partitioned away
    assert len(at_a) == 1  # the reverse direction still flows


def test_power_kill_fault_fences_the_named_host(lan):
    from repro.faults.injection import apply_drill_fault
    from repro.sttcp.power_switch import PowerSwitch

    switch = PowerSwitch(lan.sim, actuation_delay=0.010)

    class Env:
        sim = lan.sim
        power_switch = switch
        primary = lan.a
        backup = lan.b

    apply_drill_fault("power_kill", Env(), 0.5, host="backup")
    lan.sim.run(until=0.505)
    assert lan.b.is_up  # relay has not actuated yet
    lan.sim.run(until=1.0)
    assert not lan.b.is_up
    assert lan.a.is_up
    assert switch.cuts_performed == 1
    assert lan.b.crashed_at == pytest.approx(0.510)


def test_power_kill_fault_requires_a_power_switch(lan):
    from repro.faults.injection import apply_drill_fault

    class Env:
        sim = lan.sim
        power_switch = None
        primary = lan.a

    with pytest.raises(ValueError, match="power_kill.*power_switch"):
        apply_drill_fault("power_kill", Env(), 1.0)

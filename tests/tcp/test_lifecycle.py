"""Connection-table lifecycle: TCB reaping, the ephemeral-port pool,
and listener-backlog accounting under SYN storms."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionRefused, EphemeralPortsExhausted
from repro.sim.simulator import Simulator

from tests.conftest import LanPair, run_echo_once

#: TIME_WAIT is 1 s in the simulator; this drains it with margin.
TIME_WAIT_DRAIN = 2.5


def test_churned_connections_are_reaped_from_the_table():
    """N short-lived connections leave behind N empty tables, not N TCBs."""
    lan = LanPair(Simulator(seed=401))
    cycles = 20
    for index in range(cycles):
        run_echo_once(lan, payload=b"x" * 64, port=7000 + index)
    # TIME_WAIT TCBs linger while the churn is running...
    assert lan.a.tcp.connection_count > 1
    lan.sim.run(until=lan.sim.now + TIME_WAIT_DRAIN)
    # ...and the dicts themselves shrink once the timers expire.
    assert lan.a.tcp._connections == {}
    assert lan.b.tcp._connections == {}
    assert lan.a.tcp.connection_count == 0
    assert lan.b.tcp.connection_count == 0
    assert lan.a.tcp.tcbs_reaped == cycles
    assert lan.b.tcp.tcbs_reaped == cycles
    assert lan.a.tcp.connection_peak >= 2  # churn overlapped in TIME_WAIT


def test_close_observers_fire_once_per_reaped_tcb():
    lan = LanPair(Simulator(seed=402))
    reaped = []
    lan.a.tcp.close_observers.append(reaped.append)
    run_echo_once(lan, port=7100)
    lan.sim.run(until=lan.sim.now + TIME_WAIT_DRAIN)
    assert lan.a.tcp.tcbs_reaped == 1
    assert len(reaped) == 1
    assert reaped[0].local_ip == lan.ip_a


def test_ephemeral_port_exhaustion_and_reuse_after_reap():
    lan = LanPair(Simulator(seed=403))
    layer = lan.a.tcp
    # Shrink the pool to 4 ports (the range is a layer attribute for
    # exactly this); reset the cursor into the new range.
    layer.ephemeral_start = 40000
    layer.ephemeral_end = 40003
    layer._next_ephemeral = layer.ephemeral_start

    listener = lan.b.tcp.listen(9000)
    accepted = []

    def server():
        while True:
            conn = yield listener.accept()
            accepted.append(conn)

    lan.b.spawn(server(), "server")
    socks = [lan.a.tcp.connect((lan.ip_b, 9000)) for _ in range(4)]
    lan.sim.run(until=lan.sim.now + 1.0)
    assert all(sock.connected for sock in socks)

    with pytest.raises(EphemeralPortsExhausted):
        lan.a.tcp.connect((lan.ip_b, 9000))
    assert layer.ephemeral_ports_exhausted == 1

    # Close everything (both ends, so the close handshakes complete);
    # reaped connections return their ports through the free list, so a
    # fresh connect succeeds in the same range.
    for sock in socks:
        sock.close()
    for conn in accepted:
        conn.close()
    lan.sim.run(until=lan.sim.now + TIME_WAIT_DRAIN)
    assert layer.connection_count == 0
    retry = lan.a.tcp.connect((lan.ip_b, 9000))
    assert 40000 <= retry.local_address[1] <= 40003
    lan.sim.run(until=lan.sim.now + 1.0)
    assert retry.connected


def test_syn_storm_deflections_vs_unmatched_accounting():
    """N ≫ backlog concurrent opens: the overflow is counted as
    ``syns_deflected`` (a bound listener refused), never as
    ``segments_unmatched`` (no endpoint at all)."""
    lan = LanPair(Simulator(seed=404))
    backlog, storm = 8, 64
    lan.b.tcp.listen(9000, backlog=backlog)  # nobody ever accepts
    connected, refused = [0], [0]

    def opener():
        sock = lan.a.tcp.connect((lan.ip_b, 9000))
        try:
            yield sock.wait_connected()
            connected[0] += 1
        except ConnectionRefused:
            refused[0] += 1

    for index in range(storm):
        lan.a.spawn(opener(), f"open-{index}")
    lan.sim.run(until=5.0)

    assert connected[0] == backlog
    assert refused[0] == storm - backlog
    assert lan.b.tcp.syns_deflected == storm - backlog
    assert lan.b.tcp.segments_unmatched == 0

    # A SYN to a port with no listener is the *other* counter.
    stray_done = []

    def stray():
        sock = lan.a.tcp.connect((lan.ip_b, 9999))
        try:
            yield sock.wait_connected()
        except ConnectionRefused:
            stray_done.append(True)

    lan.a.spawn(stray(), "stray")
    lan.sim.run(until=lan.sim.now + 1.0)
    assert stray_done
    assert lan.b.tcp.segments_unmatched == 1
    assert lan.b.tcp.syns_deflected == storm - backlog

"""Connection lifecycle tests: handshake, refusal, teardown, RST."""

import pytest

from repro.errors import ConnectionClosed, ConnectionRefused, ConnectionReset
from repro.net.loss import ScriptedLoss
from repro.sim.simulator import Simulator
from repro.tcp.constants import TCPState

from tests.conftest import LanPair, run_echo_once


@pytest.fixture
def lan():
    return LanPair(Simulator(seed=31))


def test_three_way_handshake_establishes_both_ends(lan):
    listener = lan.b.tcp.listen(8000)
    accepted = []

    def server():
        conn = yield listener.accept()
        accepted.append(conn)

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        return sock

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sock = lan.sim.run_until_complete(process, deadline=5.0)
    assert sock.state is TCPState.ESTABLISHED
    # The handshake ACK reaches the passive side one propagation later.
    lan.sim.run(until=lan.sim.now + 0.1)
    assert accepted[0].state is TCPState.ESTABLISHED
    # The server's TCB adopted the client's MSS exchange.
    assert accepted[0].tcb.mss == sock.tcb.mss


def test_connect_to_closed_port_refused(lan):
    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 9999))
        try:
            yield sock.wait_connected()
        except ConnectionRefused:
            return "refused"

    process = lan.a.spawn(client())
    assert lan.sim.run_until_complete(process, deadline=5.0) == "refused"


def test_connect_to_silent_host_times_out(lan):
    lan.b.crash()  # no RST, just silence

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        try:
            yield sock.wait_connected()
        except Exception as exc:
            return type(exc).__name__, lan.sim.now

    process = lan.a.spawn(client())
    name, gave_up_at = lan.sim.run_until_complete(process, deadline=300.0)
    assert name == "ConnectionTimeout"
    # 6 SYN retries with exponential backoff from 1 s ≈ 63 s.
    assert 30.0 < gave_up_at < 200.0


def test_lost_syn_is_retransmitted(lan):
    # Frames 1/2 are the ARP exchange (survivable by ARP retransmit
    # alone); frame 3 is the first SYN.
    lan.hub.loss_model = ScriptedLoss(drop_indices=[3])
    assert run_echo_once(lan) == b"ping"
    assert lan.sim.now >= 1.0  # paid one initial-RTO retransmission


def test_lost_synack_recovers(lan):
    # Fourth frame on the wire (after the ARP exchange and the SYN) is
    # the SYN/ACK.
    lan.hub.loss_model = ScriptedLoss(drop_indices=[4])
    assert run_echo_once(lan) == b"ping"


def test_lost_arp_reply_is_survived_by_retransmit(lan):
    # Losing the ARP reply costs one ARP_RETRY_INTERVAL, not a failed
    # resolution plus a TCP initial RTO.
    lan.hub.loss_model = ScriptedLoss(drop_indices=[2])
    assert run_echo_once(lan) == b"ping"
    assert lan.sim.now < 1.0


def test_orderly_close_reaches_closed_and_time_wait(lan):
    states = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        data = yield conn.recv(100)
        conn.close()  # passive close after EOF-ish exchange
        yield conn.wait_closed()
        states["server"] = conn.state

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        yield sock.send(b"x")
        sock.close()  # active close
        yield sock.wait_closed()
        states["client"] = sock.state

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=30.0)
    lan.sim.run(until=lan.sim.now + 5.0)
    assert states["client"] is TCPState.CLOSED
    assert states["server"] is TCPState.CLOSED


def test_active_closer_passes_through_time_wait(lan):
    tcb_box = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.recv(10)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        tcb_box["tcb"] = sock.tcb
        yield sock.send(b"x")
        sock.close()
        yield lan.sim.timeout(0.5)  # both FINs exchanged by now

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=30.0)
    assert tcb_box["tcb"].state is TCPState.TIME_WAIT
    lan.sim.run(until=lan.sim.now + 2.0)  # TIME_WAIT expires (1 s default)
    assert tcb_box["tcb"].state is TCPState.CLOSED


def test_abort_sends_rst_and_peer_sees_reset(lan):
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        try:
            yield conn.recv(100)
        except ConnectionReset:
            outcome["server"] = "reset"

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        sock.abort()
        yield lan.sim.timeout(0.1)

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=10.0)
    assert outcome["server"] == "reset"


def test_send_after_close_rejected(lan):
    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        listener = lan.b.tcp.listen(8000)
        yield sock.wait_connected()
        sock.close()
        try:
            yield sock.send(b"late")
        except ConnectionClosed:
            return "rejected"

    process = lan.a.spawn(client())
    assert lan.sim.run_until_complete(process, deadline=10.0) == "rejected"


def test_simultaneous_close(lan):
    states = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield lan.sim.timeout(0.01)
        conn.close()
        yield conn.wait_closed()
        states["server"] = conn.state

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        yield lan.sim.timeout(0.01)
        sock.close()
        yield sock.wait_closed()
        states["client"] = sock.state

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=30.0)
    lan.sim.run(until=lan.sim.now + 5.0)
    assert states == {"server": TCPState.CLOSED, "client": TCPState.CLOSED}


def test_connection_removed_from_layer_after_close(lan):
    run_echo_once(lan)
    lan.sim.run(until=lan.sim.now + 5.0)  # drain TIME_WAIT
    assert lan.a.tcp.connections == []
    assert lan.b.tcp.connections == []


def test_ephemeral_ports_differ_per_connection(lan):
    ports = []

    def server():
        listener = lan.b.tcp.listen(8000)
        while True:
            conn = yield listener.accept()
            conn.close()

    def client():
        for _ in range(3):
            sock = lan.a.tcp.connect((lan.ip_b, 8000))
            yield sock.wait_connected()
            ports.append(sock.local_address[1])
            sock.close()
            yield sock.wait_closed()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=60.0)
    assert len(set(ports)) == 3

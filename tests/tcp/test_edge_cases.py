"""TCP edge cases: half-close, backlog, concurrent flows, challenge ACKs."""


from repro.sim.simulator import Simulator
from repro.util.bytespan import PatternBytes
from repro.util.units import KB, MB

from tests.conftest import LanPair


def test_half_close_peer_can_still_send():
    """After our FIN, the peer may keep sending until it closes too."""
    lan = LanPair(Simulator(seed=140))
    sim = lan.sim
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        # Wait for the client's FIN (EOF), then send a farewell stream.
        first = yield conn.recv(100)
        assert len(first) == 0  # immediate EOF: client closed after SYN
        yield conn.send(PatternBytes(20 * KB, 0, 3))
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        sock.close()  # half-close: FIN sent, receive side stays open
        data = yield sock.recv_exactly(20 * KB)
        outcome["ok"] = data == PatternBytes(20 * KB, 0, 3)
        yield sock.wait_closed()
        outcome["state"] = sock.state

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=60.0)
    assert outcome["ok"]


def test_listener_backlog_limits_pending_handshakes():
    lan = LanPair(Simulator(seed=141))
    listener = lan.b.tcp.listen(8000, backlog=2)
    # Nobody accepts; more clients than backlog try to connect.
    socks = [lan.a.tcp.connect((lan.ip_b, 8000)) for _ in range(4)]
    lan.sim.run(until=0.5)
    established = sum(1 for sock in socks if sock.connected)
    assert established == 2
    assert listener.may_accept_syn() is False


def test_backlog_frees_as_connections_accepted():
    lan = LanPair(Simulator(seed=142))
    listener = lan.b.tcp.listen(8000, backlog=1)
    first = lan.a.tcp.connect((lan.ip_b, 8000))
    lan.sim.run(until=0.2)
    assert first.connected

    accepted = []

    def acceptor():
        conn = yield listener.accept()
        accepted.append(conn)
        conn2 = yield listener.accept()
        accepted.append(conn2)

    lan.b.spawn(acceptor())
    lan.sim.run(until=0.4)
    second = lan.a.tcp.connect((lan.ip_b, 8000))
    lan.sim.run(until=1.0)
    assert second.connected
    assert len(accepted) == 2


def test_many_concurrent_flows_share_the_hub():
    """Five simultaneous transfers all complete with correct content."""
    lan = LanPair(Simulator(seed=143))
    sim = lan.sim
    size = 200 * KB
    results = []

    def server():
        listener = lan.b.tcp.listen(8000)
        while True:
            conn = yield listener.accept()
            lan.b.spawn(handle(conn))

    def handle(conn):
        yield conn.send(PatternBytes(size, 0, 6))
        conn.close()

    def one_client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        data = yield sock.recv_exactly(size)
        results.append(data == PatternBytes(size, 0, 6))
        sock.close()

    def all_clients():
        processes = [lan.a.spawn(one_client(), f"flow-{i}") for i in range(5)]
        for process in processes:
            yield process

    lan.b.spawn(server())
    driver = lan.a.spawn(all_clients())
    sim.run_until_complete(driver, deadline=120.0)
    assert results == [True] * 5


def test_flows_roughly_share_bandwidth():
    """Two long transfers finish within a small factor of each other."""
    lan = LanPair(Simulator(seed=144))
    sim = lan.sim
    size = 1 * MB
    finish = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        while True:
            conn = yield listener.accept()
            lan.b.spawn(push(conn))

    def push(conn):
        yield conn.send(PatternBytes(size, 0, 6))
        conn.close()

    def one_client(name):
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        yield sock.recv_exactly(size)
        finish[name] = sim.now
        sock.close()

    def both():
        first = lan.a.spawn(one_client("a"))
        second = lan.a.spawn(one_client("b"))
        yield first
        yield second

    lan.b.spawn(server())
    driver = lan.a.spawn(both())
    sim.run_until_complete(driver, deadline=300.0)
    assert max(finish.values()) < 2.5 * min(finish.values())


def test_challenge_acks_are_rate_limited():
    """A flood of out-of-window segments elicits at most the budget."""
    lan = LanPair(Simulator(seed=145))
    from repro.tcp.segment import TCPSegment
    from repro.tcp.constants import FLAG_ACK
    from repro.tcp.seqspace import wrap

    results = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        results["tcb"] = conn.tcb
        yield lan.sim.timeout(10.0)

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        results["client_tcb"] = sock.tcb
        yield lan.sim.timeout(0.05)

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=30.0)
    tcb = results["tcb"]
    sent_before = tcb.segments_sent
    # Fire 50 wildly out-of-window segments directly into the TCB.
    for index in range(50):
        bogus = TCPSegment(
            tcb.remote_port,
            tcb.local_port,
            wrap(tcb.rcv_nxt + 1_000_000 + index),
            wrap(tcb.snd_una),
            FLAG_ACK,
            1000,
        )
        tcb.on_segment(bogus)
    from repro.tcp.input import CHALLENGE_LIMIT

    responses = tcb.segments_sent - sent_before
    assert responses <= CHALLENGE_LIMIT


def test_data_while_in_fin_wait_states():
    """The active closer still ACKs and buffers peer data after its FIN."""
    lan = LanPair(Simulator(seed=146))
    sim = lan.sim
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield sim.timeout(0.05)  # client's FIN arrives first
        yield conn.send(b"late data")
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        sock.close()
        data = yield sock.recv_exactly(9)
        outcome["data"] = data.to_bytes()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=30.0)
    assert outcome["data"] == b"late data"


def test_recv_exactly_fails_on_reset():
    from repro.errors import ConnectionReset

    lan = LanPair(Simulator(seed=147))
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield lan.sim.timeout(0.01)
        conn.abort()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        try:
            yield sock.recv_exactly(100)
        except ConnectionReset:
            outcome["error"] = "reset"

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=30.0)
    assert outcome["error"] == "reset"

"""Data transfer tests: integrity, flow control, delayed ACKs, Nagle."""

import pytest

from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.util.bytespan import PatternBytes
from repro.util.units import KB, MB, mbps, us

from tests.conftest import LanPair


def transfer(lan, size, port=8000, chunk=65536, pattern_id=4, deadline=300.0):
    """Server pushes `size` pattern bytes; client receives and verifies.

    Returns (verified, duration)."""
    sim = lan.sim
    outcome = {"verified": True}

    def server():
        listener = lan.b.tcp.listen(port)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(size, 0, pattern_id))
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, port))
        yield sock.wait_connected()
        start = sim.now
        got = 0
        while got < size:
            piece = yield sock.recv(chunk)
            if len(piece) == 0:
                break
            if piece != PatternBytes(len(piece), got, pattern_id):
                outcome["verified"] = False
            got += len(piece)
        outcome["received"] = got
        outcome["duration"] = sim.now - start
        sock.close()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=deadline)
    return outcome


def test_small_transfer_integrity():
    lan = LanPair(Simulator(seed=41))
    outcome = transfer(lan, 10 * KB)
    assert outcome["verified"]
    assert outcome["received"] == 10 * KB


def test_multi_megabyte_transfer_integrity():
    lan = LanPair(Simulator(seed=42))
    outcome = transfer(lan, 4 * MB)
    assert outcome["verified"]
    assert outcome["received"] == 4 * MB


def test_throughput_window_limited():
    """With a long-delay LAN, throughput must track rcv window / RTT."""
    config = TCPConfig()
    lan = LanPair(Simulator(seed=43), tcp_config=config, hub_delay=0.004)
    outcome = transfer(lan, 2 * MB)
    rtt = 2 * 0.004
    expected = config.rcv_buffer / rtt
    measured = outcome["received"] / outcome["duration"]
    assert measured == pytest.approx(expected, rel=0.35)


def test_throughput_wire_limited_on_fast_lan():
    lan = LanPair(Simulator(seed=44), hub_delay=us(10))
    outcome = transfer(lan, 2 * MB)
    measured_bps = outcome["received"] * 8 / outcome["duration"]
    assert measured_bps > mbps(60)  # most of the 100 Mb/s wire


def test_bidirectional_transfer():
    """Both directions carry data concurrently.

    Each side's payload fits its send buffer, so neither blocks on a peer
    that has not started reading yet (sending more than buffers+windows
    can hold while both sides defer reading deadlocks on real TCP too).
    """
    lan = LanPair(Simulator(seed=45))
    sim = lan.sim
    results = {}
    size = 24 * KB  # < 32 KB send buffer

    def side(host, peer_ip, listen_port, connect_port, name, listen_first):
        if listen_first:
            listener = host.tcp.listen(listen_port)
            conn = yield listener.accept()
        else:
            conn = host.tcp.connect((peer_ip, connect_port))
            yield conn.wait_connected()
        yield conn.send(PatternBytes(size, 0, 6))
        got = yield conn.recv_exactly(size)
        results[name] = got == PatternBytes(size, 0, 6)
        conn.close()

    server_process = lan.b.spawn(side(lan.b, lan.ip_a, 8000, 0, "b", True))
    process = lan.a.spawn(side(lan.a, lan.ip_b, 0, 8000, "a", False))
    sim.run_until_complete(process, deadline=60.0)
    sim.run_until_complete(server_process, deadline=60.0)
    assert results == {"a": True, "b": True}


def test_zero_window_then_reopen():
    """A non-reading receiver closes the window; the sender's application
    blocks (send buffer smaller than the payload) and resumes when the
    receiver finally reads."""
    config = TCPConfig(rcv_buffer=4 * KB, snd_buffer=8 * KB)
    lan = LanPair(Simulator(seed=46), tcp_config=config)
    sim = lan.sim
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield sim.timeout(3.0)  # let the window fill and close
        data = yield conn.recv_exactly(32 * KB)
        outcome["ok"] = data == PatternBytes(32 * KB, 0, 2)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        yield sock.send(PatternBytes(32 * KB, 0, 2))
        outcome["send_done_at"] = sim.now
        sock.close()

    server_process = lan.b.spawn(server())
    lan.a.spawn(client())
    sim.run_until_complete(server_process, deadline=120.0)
    assert outcome["ok"]
    # 32 KB cannot fit in 8 KB of send buffer + 4 KB of receive window:
    # the send only completed after the receiver started reading at t=3.
    assert outcome["send_done_at"] >= 3.0


def test_window_probe_while_closed():
    """The persist timer must probe a zero window (no deadlock)."""
    config = TCPConfig(rcv_buffer=2 * KB, snd_buffer=32 * KB)
    lan = LanPair(Simulator(seed=47), tcp_config=config)
    sim = lan.sim
    done = {}
    tcb_box = {}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield sim.timeout(5.0)
        received = 0
        while received < 8 * KB:
            piece = yield conn.recv(64 * KB)
            if len(piece) == 0:
                break
            received += len(piece)
        done["t"] = sim.now
        done["received"] = received

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        tcb_box["tcb"] = sock.tcb
        yield sock.send(PatternBytes(8 * KB, 0, 2))
        sock.close()

    server_process = lan.b.spawn(server())
    lan.a.spawn(client())
    sim.run_until_complete(server_process, deadline=120.0)
    assert done["received"] == 8 * KB
    assert done["t"] >= 5.0
    # While the server slept, the window was zero and data was pending:
    # the client's persist timer must have fired at least once.
    assert tcb_box["tcb"].persist_timer.fired_count >= 1


def test_delayed_ack_coalesces():
    """A one-way stream must generate roughly one ACK per two segments."""
    lan = LanPair(Simulator(seed=48))
    transfer(lan, 500 * KB)
    # Count pure ACK segments the client sent (no payload).
    data_segments = 500 * KB // 1460 + 1
    acks = lan.nic_a.tx_frames  # client sends almost only ACKs after setup
    assert acks < data_segments * 0.75


def test_nagle_coalesces_small_writes():
    config_on = TCPConfig(nagle=True)
    lan = LanPair(Simulator(seed=49), tcp_config=config_on)
    sim = lan.sim

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.recv_exactly(100)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        for _ in range(100):  # 100 × 1-byte writes
            yield sock.send(b"x")
        yield sim.timeout(1.0)
        sock.close()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=30.0)
    # Nagle must have coalesced the tinygrams into far fewer segments.
    assert lan.nic_a.tx_frames < 40


def test_mss_respected_on_wire():
    config = TCPConfig(mss=536)
    lan = LanPair(Simulator(seed=50), tcp_config=config)
    seen_sizes = []
    original = lan.nic_a.receive_frame

    def spy(frame):
        from repro.ip.datagram import PROTO_TCP

        datagram = frame.payload
        if getattr(datagram, "protocol", None) == PROTO_TCP:
            seen_sizes.append(datagram.payload.payload_length)
        original(frame)

    lan.nic_a.receive_frame = spy
    transfer(lan, 50 * KB)
    assert seen_sizes
    assert max(seen_sizes) <= 536

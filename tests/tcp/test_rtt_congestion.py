"""Tests for the RTO estimator and Reno congestion control."""

import pytest

from repro.tcp.congestion import (
    DUPACK_THRESHOLD,
    RenoCongestionControl,
    initial_window,
)
from repro.tcp.rtt import RTTEstimator

MSS = 1460


# ------------------------------------------------------------------- RTT/RTO
def test_initial_rto_is_one_second():
    assert RTTEstimator().rto == 1.0


def test_first_sample_sets_srtt_directly():
    estimator = RTTEstimator()
    estimator.on_measurement(0.1)
    assert estimator.srtt == pytest.approx(0.1)
    assert estimator.rttvar == pytest.approx(0.05)
    # RTO = SRTT + 4*RTTVAR = 0.3, above the 0.2 floor.
    assert estimator.rto == pytest.approx(0.3)


def test_rto_floor_applied():
    estimator = RTTEstimator()
    estimator.on_measurement(0.001)  # LAN RTT
    assert estimator.rto == 0.2  # Linux 200 ms floor (§6.2)


def test_smoothing_follows_rfc6298():
    estimator = RTTEstimator()
    estimator.on_measurement(0.1)
    estimator.on_measurement(0.2)
    assert estimator.srtt == pytest.approx(7 / 8 * 0.1 + 1 / 8 * 0.2)
    assert estimator.rttvar == pytest.approx(3 / 4 * 0.05 + 1 / 4 * abs(0.1 - 0.2))


def test_backoff_doubles_and_caps():
    estimator = RTTEstimator()
    estimator.on_measurement(0.05)  # RTO pinned at floor 0.2
    values = []
    for _ in range(12):
        values.append(estimator.rto)
        estimator.on_timeout()
    assert values[0] == pytest.approx(0.2)
    assert values[1] == pytest.approx(0.4)
    assert values[2] == pytest.approx(0.8)
    assert values[-1] == 120.0  # Linux 2 min ceiling (§6.2)


def test_new_measurement_clears_backoff():
    estimator = RTTEstimator()
    estimator.on_measurement(0.05)
    estimator.on_timeout()
    estimator.on_timeout()
    assert estimator.rto > 0.2
    estimator.on_measurement(0.05)
    assert estimator.rto == pytest.approx(0.2)


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RTTEstimator().on_measurement(-0.1)


# ------------------------------------------------------------------ congestion
def test_initial_window_rfc3390():
    assert initial_window(1460) == 4380  # 3 segments
    assert initial_window(400) == 1600  # capped at 4 MSS
    assert initial_window(3000) == 6000  # at least 2 MSS


def test_slow_start_doubles_per_window():
    cc = RenoCongestionControl(MSS)
    start = cc.window()
    cc.on_ack_new(MSS)
    assert cc.window() == start + MSS
    assert cc.in_slow_start


def test_congestion_avoidance_linear_growth():
    cc = RenoCongestionControl(MSS)
    cc.ssthresh = cc.cwnd  # force avoidance
    start = cc.window()
    # One cwnd worth of acked bytes grows the window by one MSS.
    acked = 0
    while acked < start:
        cc.on_ack_new(MSS)
        acked += MSS
    assert cc.window() == pytest.approx(start + MSS, abs=MSS)


def test_fast_recovery_halves_and_inflates():
    cc = RenoCongestionControl(MSS)
    flight = 10 * MSS
    cc.cwnd = flight
    cc.enter_fast_recovery(flight)
    assert cc.ssthresh == flight / 2
    assert cc.window() == flight / 2 + DUPACK_THRESHOLD * MSS
    assert cc.in_fast_recovery
    cc.on_dupack_in_recovery()
    assert cc.window() == flight / 2 + (DUPACK_THRESHOLD + 1) * MSS
    cc.exit_fast_recovery()
    assert not cc.in_fast_recovery
    assert cc.window() == flight / 2


def test_ssthresh_floor_two_segments():
    cc = RenoCongestionControl(MSS)
    cc.enter_fast_recovery(MSS)  # tiny flight
    assert cc.ssthresh == 2 * MSS


def test_rto_collapses_to_one_segment():
    cc = RenoCongestionControl(MSS)
    cc.cwnd = 20 * MSS
    cc.on_retransmission_timeout(20 * MSS)
    assert cc.window() == MSS
    assert cc.ssthresh == 10 * MSS
    assert cc.timeouts == 1


def test_partial_ack_deflates():
    cc = RenoCongestionControl(MSS)
    cc.cwnd = 10 * MSS
    cc.enter_fast_recovery(10 * MSS)
    before = cc.window()
    cc.on_partial_ack(2 * MSS)
    assert cc.window() == before - 2 * MSS + MSS


def test_restart_after_idle_resets_to_initial_window():
    cc = RenoCongestionControl(MSS)
    cc.cwnd = 30 * MSS
    cc.restart_after_idle()
    assert cc.window() == initial_window(MSS)


def test_restart_after_idle_never_grows_window():
    cc = RenoCongestionControl(MSS)
    cc.cwnd = MSS  # post-RTO
    cc.restart_after_idle()
    assert cc.window() == MSS


def test_restart_skipped_in_fast_recovery():
    cc = RenoCongestionControl(MSS)
    cc.cwnd = 30 * MSS
    cc.enter_fast_recovery(30 * MSS)
    inflated = cc.window()
    cc.restart_after_idle()
    assert cc.window() == inflated


def test_mss_validation():
    with pytest.raises(ValueError):
        RenoCongestionControl(0)

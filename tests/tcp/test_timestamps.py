"""Tests for the TCP timestamp option (disabled in the paper's runs, §6,
but implemented and negotiable)."""


from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.util.bytespan import PatternBytes
from repro.util.units import KB

from tests.conftest import LanPair


def run_transfer(lan, size=64 * KB, port=8000):
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(port)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(size, 0, 4))
        outcome["server_tcb"] = conn.tcb
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, port))
        yield sock.wait_connected()
        got = 0
        while got < size:
            piece = yield sock.recv(65536)
            got += len(piece)
        outcome["client_tcb"] = sock.tcb
        outcome["ok"] = got == size
        sock.close()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=120.0)
    return outcome


def test_timestamps_negotiated_when_both_sides_enable():
    config = TCPConfig(timestamps=True)
    lan = LanPair(Simulator(seed=101), tcp_config=config)
    outcome = run_transfer(lan)
    assert outcome["ok"]
    assert outcome["client_tcb"].use_timestamps
    assert outcome["server_tcb"].use_timestamps


def test_timestamps_off_when_client_disables():
    sim = Simulator(seed=102)
    lan = LanPair(sim, tcp_config=TCPConfig(timestamps=False))
    # Server would accept timestamps, but the client never offers.
    lan.b.tcp.config = TCPConfig(timestamps=True)
    outcome = run_transfer(lan)
    assert outcome["ok"]
    assert not outcome["server_tcb"].use_timestamps


def test_timestamps_add_header_overhead():
    plain = LanPair(Simulator(seed=103), tcp_config=TCPConfig(timestamps=False))
    run_transfer(plain)
    stamped = LanPair(Simulator(seed=103), tcp_config=TCPConfig(timestamps=True))
    run_transfer(stamped)
    # Same seed, same payload: the timestamped run moves more wire bytes.
    assert stamped.nic_b.tx_bytes > plain.nic_b.tx_bytes


def test_timestamps_feed_rtt_estimation():
    config = TCPConfig(timestamps=True)
    lan = LanPair(Simulator(seed=104), tcp_config=config, hub_delay=0.002)
    outcome = run_transfer(lan)
    server_tcb = outcome["server_tcb"]
    assert server_tcb.rtt.has_sample
    # SRTT reflects the 2 ms one-way (≈4 ms round-trip) hub latency.
    assert 0.003 < server_tcb.rtt.srtt < 0.02


def test_sttcp_run_with_timestamps_enabled():
    """The paper disabled timestamps; ST-TCP must nevertheless work with
    them on (shadow segments carry the same option)."""
    from repro.apps.workload import echo_workload
    from repro.harness.calibrate import FAST_LAN
    from repro.harness.runner import run_workload
    from repro.harness.scenario import Scenario
    from repro.sttcp.config import STTCPConfig
    import dataclasses

    profile = dataclasses.replace(FAST_LAN, name="fast-lan-ts")
    scenario = Scenario(profile=profile, sttcp=STTCPConfig(hb_interval=0.05), seed=105)
    for host in (scenario.client, scenario.primary, scenario.backup):
        host.tcp.config = host.tcp.config.copy(timestamps=True)
    run = run_workload(echo_workload(20), scenario=scenario, crash_at=0.101, deadline=120.0)
    assert run.result.error is None
    assert run.result.verified
    assert scenario.pair.failed_over

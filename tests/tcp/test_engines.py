"""Engine-isolation tests: each engine driven directly on a fake clock.

No simulator, no hosts, no wire — a hand-cranked clock and a stub IP
layer are enough to pin down the output engine's send-policy decision
table, the retransmit engine's RFC 6298 backoff bounds, the buffer
manager's sequence-space translation across the 2^32 wrap, and the
extension dispatch contracts.
"""

import pytest

from repro.errors import ConnectionTimeout
from repro.net.addresses import IPAddress
from repro.tcp.config import TCPConfig
from repro.tcp.constants import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    PERSIST_TIMEOUT_MIN,
    TCPState,
)
from repro.tcp.extension import TCPExtension, overridden_hooks
from repro.tcp.segment import TCPSegment
from repro.tcp.seqspace import wrap
from repro.tcp.tcb import TCPConnection
from repro.util.bytespan import PatternBytes


# -- fake clock + stub layer --------------------------------------------------
class _Handle:
    __slots__ = ("time", "fn", "seq", "cancelled")

    def __init__(self, time, fn, seq):
        self.time = time
        self.fn = fn
        self.seq = seq
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _NoTrace:
    @staticmethod
    def enabled_for(_category):
        return False


class FakeClock:
    """Hand-cranked event clock satisfying the RestartableTimer contract."""

    def __init__(self):
        self.now = 0.0
        self.trace = _NoTrace()
        self._queue = []
        self._seq = 0

    def call_later(self, delay, fn):
        handle = _Handle(self.now + delay, fn, self._seq)
        self._seq += 1
        self._queue.append(handle)
        return handle

    def advance(self, dt):
        """Move time forward, firing due callbacks in schedule order."""
        deadline = self.now + dt
        while True:
            due = [h for h in self._queue if not h.cancelled and h.time <= deadline]
            if not due:
                break
            head = min(due, key=lambda h: (h.time, h.seq))
            self._queue.remove(head)
            self.now = head.time
            head.fn()
        self._queue = [h for h in self._queue if not h.cancelled]
        self.now = deadline


class _Samples:
    def observe(self, _value):
        pass


class FakeLayer:
    """Stub IP layer: records transmissions instead of delivering them."""

    def __init__(self, clock):
        self.sim = clock
        self.sent = []
        self.rtt_samples = _Samples()

        class _Host:
            name = "unit"
            is_up = True

        self.host = _Host()

    def send_segment(self, _conn, segment):
        self.sent.append((self.sim.now, segment))

    def generate_isn(self):
        return 1000

    def connection_closed(self, conn):
        pass


def make_conn(**overrides):
    clock = FakeClock()
    layer = FakeLayer(clock)
    config = TCPConfig(**overrides)
    conn = TCPConnection(
        layer, IPAddress("10.0.0.1"), 8000, IPAddress("10.0.0.2"), 40000, config
    )
    return conn, layer, clock


def establish(conn, iss=1000, irs=5000, wnd=65535, cwnd=10**6):
    """Put a connection straight into ESTABLISHED with known anchors."""
    conn.state = TCPState.ESTABLISHED
    conn.iss = iss
    conn.snd_una = conn.snd_nxt = conn.snd_max = iss + 1
    conn.irs = irs
    conn.rcv_nxt = irs + 1
    conn.snd_wnd = wnd
    conn.cc.cwnd = cwnd


def ack_from_peer(conn, ack_abs, wnd=65535, seq_abs=None):
    seq_abs = conn.rcv_nxt if seq_abs is None else seq_abs
    return TCPSegment(
        conn.remote_port, conn.local_port, wrap(seq_abs), wrap(ack_abs), FLAG_ACK, wnd
    )


def payloads(layer):
    return [seg.payload_length for _t, seg in layer.sent]


# -- output engine: the send-policy decision table ----------------------------
class TestOutputDecisionTable:
    def test_segments_at_mss_with_push_on_tail(self):
        conn, layer, _ = make_conn()
        establish(conn)
        conn.app_write(PatternBytes(3000, 0, 3))
        assert payloads(layer) == [1460, 1460, 80]
        assert all(seg.flags & FLAG_ACK for _t, seg in layer.sent)
        assert layer.sent[-1][1].flags & FLAG_PSH
        assert conn.snd_nxt == conn.iss + 1 + 3000

    def test_flow_window_limits_transmission(self):
        conn, layer, _ = make_conn()
        establish(conn, wnd=1000)
        conn.app_write(PatternBytes(3000, 0, 3))
        assert payloads(layer) == [1000]
        # Window opens: the rest flows out.
        conn.snd_wnd = 65535
        conn.try_output()
        assert payloads(layer) == [1000, 1460, 540]

    def test_congestion_window_limits_transmission(self):
        conn, layer, _ = make_conn()
        establish(conn, cwnd=1460)
        conn.app_write(PatternBytes(3000, 0, 3))
        assert payloads(layer) == [1460]

    def test_nagle_holds_subsize_segment_while_data_in_flight(self):
        conn, layer, _ = make_conn(nagle=True)
        establish(conn)
        conn.app_write(PatternBytes(1560, 0, 3))
        assert payloads(layer) == [1460]  # the 100-byte tail waits
        conn.on_segment(ack_from_peer(conn, conn.iss + 1 + 1460))
        assert payloads(layer)[-1] == 100  # flight drained: tail released

    def test_nagle_off_sends_subsize_immediately(self):
        conn, layer, _ = make_conn(nagle=False)
        establish(conn)
        conn.app_write(PatternBytes(1560, 0, 3))
        assert payloads(layer) == [1460, 100]

    def test_fin_piggybacks_on_final_data_segment(self):
        conn, layer, _ = make_conn()
        establish(conn, wnd=0)  # hold the data until the close is queued
        conn.app_write(PatternBytes(100, 0, 3))
        conn.app_close()
        assert payloads(layer) == []
        conn.snd_wnd = 65535
        conn.try_output()
        last = layer.sent[-1][1]
        assert last.flags & FLAG_FIN and last.payload_length == 100
        assert conn.snd_nxt == conn.iss + 1 + 101  # FIN consumed one seq
        assert conn.state is TCPState.FIN_WAIT_1

    def test_zero_window_arms_persist_and_probes_one_byte(self):
        conn, layer, clock = make_conn()
        establish(conn, wnd=0)
        conn.app_write(PatternBytes(500, 0, 3))
        assert payloads(layer) == []
        assert conn.retransmit.persist_timer.running
        clock.advance(PERSIST_TIMEOUT_MIN + 0.001)
        assert payloads(layer) == [1]  # the window probe
        # Exponential probe spacing.
        assert conn.retransmit.persist_interval == 2 * PERSIST_TIMEOUT_MIN

    def test_delayed_ack_waits_then_timer_fires(self):
        conn, layer, clock = make_conn()
        establish(conn)
        conn.output.schedule_ack(1)
        assert payloads(layer) == []
        clock.advance(conn.config.delack_timeout + 0.001)
        assert payloads(layer) == [0]  # the delayed pure ACK

    def test_delayed_ack_second_segment_forces_immediate_ack(self):
        conn, layer, _ = make_conn()
        establish(conn)
        conn.output.schedule_ack(1)
        conn.output.schedule_ack(1)
        assert payloads(layer) == [0]
        assert not conn.output.delack_timer.running


# -- retransmit engine: RFC 6298 bounds ---------------------------------------
class TestRetransmitBackoff:
    def test_backoff_doubles_from_the_clamped_floor(self):
        conn, layer, clock = make_conn()
        establish(conn)
        # A LAN-fast sample pins the base RTO at the 200 ms floor.
        conn.retransmit.rtt.on_measurement(0.001)
        assert conn.retransmit.rtt.rto == pytest.approx(conn.config.rto_min)
        conn.app_write(PatternBytes(1460, 0, 3))
        fire_times = []
        deadline = conn.retransmit.rto_timer.deadline
        for _ in range(4):
            clock.advance(deadline - clock.now + 1e-9)
            fire_times.append(clock.now)
            deadline = conn.retransmit.rto_timer.deadline
        gaps = [b - a for a, b in zip(fire_times, fire_times[1:])]
        # 200 ms, 400 ms, 800 ms: the paper's §6.2 client-side progression.
        assert gaps == pytest.approx([0.4, 0.8, 1.6], rel=1e-6)
        assert conn.retransmissions == 4
        # Karn: the timed range was abandoned on the first timeout.
        assert conn.retransmit.timing is None

    def test_rto_clamped_to_min_and_max(self):
        conn, _, _ = make_conn()
        rtt = conn.retransmit.rtt
        rtt.on_measurement(0.0001)
        assert rtt.rto == conn.config.rto_min
        for _ in range(64):
            rtt.on_timeout()
        assert rtt.rto == conn.config.rto_max

    def test_retransmission_resends_head_not_tail(self):
        conn, layer, clock = make_conn()
        establish(conn)
        conn.app_write(PatternBytes(2920, 0, 3))
        assert payloads(layer) == [1460, 1460]
        clock.advance(conn.retransmit.rtt.rto + 0.001)
        _t, head = layer.sent[-1]
        assert head.seq == wrap(conn.snd_una)
        assert head.payload_length == 1460
        assert conn.retransmit.recovery_point == conn.snd_max

    def test_too_many_retransmissions_time_out_the_connection(self):
        conn, _, clock = make_conn(max_retransmits=2, rto_max=0.4)
        establish(conn)
        conn.app_write(PatternBytes(100, 0, 3))
        clock.advance(60.0)
        assert conn.state is TCPState.CLOSED
        assert isinstance(conn.error, ConnectionTimeout)

    def test_force_go_back_n_restarts_from_head(self):
        conn, layer, _ = make_conn()
        establish(conn)
        conn.app_write(PatternBytes(2920, 0, 3))
        sent_before = len(layer.sent)
        conn.retransmit.force_go_back_n()
        _t, head = layer.sent[sent_before]
        assert head.seq == wrap(conn.snd_una)
        assert conn.retransmit.recovery_point == conn.snd_max
        assert conn.retransmit.rto_timer.running


# -- buffer manager: sequence-space translation across the wrap ---------------
class TestBufferSeqspaceWrap:
    WRAP_ISS = 2**32 - 5  # the first data bytes straddle the 2^32 boundary

    def test_offset_seq_roundtrip_across_wrap(self):
        conn, _, _ = make_conn()
        establish(conn, iss=self.WRAP_ISS)
        for offset in (0, 3, 4, 5, 1000):
            seq_abs = conn.buffers.snd_seq(offset)
            assert conn.buffers.snd_offset(seq_abs) == offset
        # Offset 4 is absolute seq 2^32 exactly: past the wire wrap.
        assert conn.buffers.snd_seq(4) == 2**32
        assert wrap(conn.buffers.snd_seq(4)) == 0

    def test_wire_sequence_numbers_wrap_mid_transfer(self):
        conn, layer, _ = make_conn()
        establish(conn, iss=self.WRAP_ISS)
        conn.app_write(PatternBytes(2920, 0, 3))
        first, second = (seg for _t, seg in layer.sent)
        assert first.seq == wrap(self.WRAP_ISS + 1) == 2**32 - 4
        assert second.seq == wrap(self.WRAP_ISS + 1 + 1460) == 1456
        # Cumulative ACK for everything lands cleanly across the wrap.
        conn.on_segment(ack_from_peer(conn, self.WRAP_ISS + 1 + 2920))
        assert conn.snd_una == conn.snd_max == self.WRAP_ISS + 1 + 2920
        assert conn.flight_size == 0

    def test_inject_receive_data_across_wrap(self):
        conn, _, _ = make_conn()
        establish(conn, irs=2**32 - 3)
        advanced = conn.inject_receive_data(conn.irs + 1, PatternBytes(10, 0, 3))
        assert advanced == 10
        assert conn.rcv_nxt == conn.irs + 11
        assert conn.readable_bytes == 10
        # A gap stalls rcv_nxt; filling it drains the stash.
        assert conn.inject_receive_data(conn.irs + 16, PatternBytes(5, 15, 3)) == 0
        assert conn.rcv_nxt == conn.irs + 11
        assert conn.inject_receive_data(conn.irs + 11, PatternBytes(5, 10, 3)) == 10
        assert conn.rcv_nxt == conn.irs + 21


# -- extension dispatch contracts ---------------------------------------------
class _Recorder(TCPExtension):
    name = "test.recorder"

    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def on_segment_in(self, conn, segment):
        self.log.append((self.tag, "in"))
        return False

    def on_ack(self, conn, segment, ack_abs):
        self.log.append((self.tag, "ack", ack_abs))
        return ack_abs

    def filter_transmit(self, conn, segment):
        self.log.append((self.tag, "tx"))
        return True


class TestExtensionDispatch:
    def test_overridden_hooks_reports_only_overrides(self):
        class AckOnly(TCPExtension):
            def on_ack(self, conn, segment, ack_abs):
                return ack_abs

        assert overridden_hooks(AckOnly()) == ("on_ack",)
        assert overridden_hooks(TCPExtension()) == ()

    def test_chains_rebuilt_on_add_and_remove(self):
        conn, _, _ = make_conn()
        establish(conn)
        ext = _Recorder([], "a")
        conn.add_extension(ext)
        assert conn._ext_on_segment_in == (ext,)
        assert conn._ext_filter_transmit == (ext,)
        assert conn._ext_on_state_change == ()  # not overridden
        conn.remove_extension(ext)
        assert conn._ext_on_segment_in == ()
        assert conn.extensions == ()

    def test_all_extensions_see_a_consumed_segment(self):
        log = []

        class Consumer(_Recorder):
            def on_segment_in(self, conn, segment):
                log.append((self.tag, "in"))
                return True

        conn, _, _ = make_conn()
        establish(conn)
        conn.add_extension(Consumer(log, "eat"))
        conn.add_extension(_Recorder(log, "see"))
        data = TCPSegment(
            conn.remote_port,
            conn.local_port,
            wrap(conn.rcv_nxt),
            wrap(conn.snd_una),
            FLAG_ACK,
            65535,
            PatternBytes(100, 0, 3),
        )
        conn.on_segment(data)
        assert ("eat", "in") in log and ("see", "in") in log
        # Consumed: core processing skipped, nothing buffered.
        assert conn.readable_bytes == 0
        assert conn.rcv_nxt == conn.irs + 1

    def test_first_transmit_veto_short_circuits(self):
        log = []

        class Veto(_Recorder):
            def filter_transmit(self, conn, segment):
                log.append((self.tag, "tx"))
                return False

        conn, layer, _ = make_conn()
        establish(conn)
        conn.add_extension(Veto(log, "veto"))
        conn.add_extension(_Recorder(log, "after"))
        conn.app_write(PatternBytes(100, 0, 3))
        assert layer.sent == []
        assert ("veto", "tx") in log
        assert ("after", "tx") not in log  # never consulted past the veto

    def test_on_ack_chain_runs_in_registration_order(self):
        log = []
        conn, _, _ = make_conn()
        establish(conn)
        conn.add_extension(_Recorder(log, "first"))
        conn.add_extension(_Recorder(log, "second"))
        conn.app_write(PatternBytes(100, 0, 3))
        log.clear()
        conn.on_segment(ack_from_peer(conn, conn.iss + 101))
        acks = [entry for entry in log if entry[1] == "ack"]
        assert [entry[0] for entry in acks] == ["first", "second"]

    def test_add_extension_index_controls_order(self):
        conn, _, _ = make_conn()
        first, second = _Recorder([], "a"), _Recorder([], "b")
        conn.add_extension(first)
        conn.add_extension(second, index=0)
        assert conn.extensions == (second, first)

"""Tests for 32-bit sequence arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp.constants import SEQ_SPACE
from repro.tcp.seqspace import seq_ge, seq_gt, seq_le, seq_lt, unwrap, wrap


def test_wrap_masks_to_32_bits():
    assert wrap(0) == 0
    assert wrap(SEQ_SPACE) == 0
    assert wrap(SEQ_SPACE + 5) == 5
    assert wrap(3 * SEQ_SPACE + 7) == 7


def test_unwrap_identity_near_reference():
    assert unwrap(100, 90) == 100
    assert unwrap(100, 110) == 100


def test_unwrap_across_wraparound_forward():
    # Reference just below the wrap boundary; wire value just past it.
    reference = SEQ_SPACE - 10
    assert unwrap(5, reference) == SEQ_SPACE + 5


def test_unwrap_across_wraparound_backward():
    # Reference just past an epoch boundary; wire value just below it.
    reference = SEQ_SPACE + 3
    assert unwrap(SEQ_SPACE - 4, reference) == SEQ_SPACE - 4


def test_unwrap_multi_epoch_reference():
    reference = 5 * SEQ_SPACE + 1000
    assert unwrap(1500, reference) == 5 * SEQ_SPACE + 1500
    assert unwrap(wrap(reference - 2000), reference) == reference - 2000


def test_unwrap_validates_wire_range():
    with pytest.raises(ValueError):
        unwrap(-1, 0)
    with pytest.raises(ValueError):
        unwrap(SEQ_SPACE, 0)


def test_wrapped_comparisons():
    assert seq_lt(1, 2)
    assert seq_gt(2, 1)
    assert seq_le(2, 2)
    assert seq_ge(2, 2)
    # Across the wrap point: 2^32-1 < 5 in sequence space.
    assert seq_lt(SEQ_SPACE - 1, 5)
    assert seq_gt(5, SEQ_SPACE - 1)


@given(st.integers(0, 1 << 40), st.integers(-(1 << 30), 1 << 30))
def test_prop_unwrap_recovers_value_within_half_space(reference, delta):
    """wrap→unwrap is the identity whenever the true value is within
    ±2³¹ of the reference (TCP's validity window)."""
    true_value = reference + delta
    if true_value < 0:
        return
    assert unwrap(wrap(true_value), reference) == true_value


@given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1))
def test_prop_seq_lt_antisymmetric(a, b):
    if a != b:
        assert seq_lt(a, b) != seq_lt(b, a)
    else:
        assert not seq_lt(a, b)

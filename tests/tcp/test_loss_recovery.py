"""Loss recovery tests: fast retransmit, RTO, go-back-N, Karn, dup ACKs."""


from repro.ip.datagram import PROTO_TCP
from repro.net.loss import RandomLoss, ScriptedLoss
from repro.sim.simulator import Simulator
from repro.util.bytespan import PatternBytes
from repro.util.units import KB, MB

from tests.conftest import LanPair


def push_stream(lan, size, loss_model=None, deadline=600.0, pattern_id=4):
    """Server→client stream with optional loss on the hub."""
    if loss_model is not None:
        lan.hub.loss_model = loss_model
    sim = lan.sim
    outcome = {"verified": True, "received": 0}

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(size, 0, pattern_id))
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        got = 0
        while got < size:
            piece = yield sock.recv(65536)
            if len(piece) == 0:
                break
            if piece != PatternBytes(len(piece), got, pattern_id):
                outcome["verified"] = False
            got += len(piece)
        outcome["received"] = got
        outcome["server_tcb"] = lan.b.tcp.connections[0] if lan.b.tcp.connections else None
        sock.close()

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    sim.run_until_complete(process, deadline=deadline)
    return outcome


def drop_nth_data_segment(n, min_payload=1000):
    """Loss model dropping the nth large TCP data frame."""
    counter = {"seen": 0}

    def predicate(frame):
        datagram = frame.payload
        if getattr(datagram, "protocol", None) != PROTO_TCP:
            return False
        if datagram.payload.payload_length < min_payload:
            return False
        counter["seen"] += 1
        return counter["seen"] == n

    return ScriptedLoss(predicate=predicate)


def test_single_loss_recovered_by_fast_retransmit():
    lan = LanPair(Simulator(seed=61))
    outcome = push_stream(lan, 500 * KB, drop_nth_data_segment(50))
    assert outcome["verified"] and outcome["received"] == 500 * KB
    # Enough dup ACKs follow a mid-stream hole: fast retransmit, no RTO.
    server_tcb = outcome["server_tcb"]
    assert server_tcb is None or server_tcb.cc.timeouts == 0
    assert lan.sim.now < 2.0  # never stalled a full RTO


def drop_frame_containing_offset(target):
    """Drop (once) the first data frame carrying stream byte ``target``."""
    state = {"bytes": 0, "dropped": False}

    def predicate(frame):
        datagram = frame.payload
        if getattr(datagram, "protocol", None) != PROTO_TCP:
            return False
        length = datagram.payload.payload_length
        if length == 0 or state["dropped"]:
            return False
        start = state["bytes"]
        state["bytes"] += length
        if start <= target < start + length:
            state["dropped"] = True
            return True
        return False

    return ScriptedLoss(predicate=predicate)


def test_loss_near_end_recovered_by_rto():
    """Losing the very last segment leaves nothing to generate dup ACKs —
    the retransmission timer must fire."""
    lan = LanPair(Simulator(seed=62))
    size = 100 * KB
    outcome = push_stream(lan, size, drop_frame_containing_offset(size - 1))
    assert outcome["verified"] and outcome["received"] == size
    assert lan.sim.now >= 0.2  # paid at least the minimum RTO


def test_burst_loss_recovered():
    lan = LanPair(Simulator(seed=63))
    model = ScriptedLoss(drop_indices=set(range(40, 48)))  # 8 consecutive frames
    outcome = push_stream(lan, 500 * KB, model)
    assert outcome["verified"] and outcome["received"] == 500 * KB


def test_random_loss_one_percent():
    lan = LanPair(Simulator(seed=64))
    rng = lan.sim.random.stream("loss")
    outcome = push_stream(lan, 1 * MB, RandomLoss(rng, 0.01), deadline=1200.0)
    assert outcome["verified"] and outcome["received"] == 1 * MB


def test_random_loss_five_percent():
    lan = LanPair(Simulator(seed=65))
    rng = lan.sim.random.stream("loss")
    outcome = push_stream(lan, 256 * KB, RandomLoss(rng, 0.05), deadline=2400.0)
    assert outcome["verified"] and outcome["received"] == 256 * KB


def test_lost_ack_is_harmless():
    """Cumulative ACKs cover for individual ACK losses."""
    lan = LanPair(Simulator(seed=66))
    counter = {"seen": 0}

    def ack_predicate(frame):
        datagram = frame.payload
        if getattr(datagram, "protocol", None) != PROTO_TCP:
            return False
        segment = datagram.payload
        if segment.payload_length > 0:
            return False
        counter["seen"] += 1
        return counter["seen"] % 3 == 0  # drop every third pure ACK

    outcome = push_stream(lan, 300 * KB, ScriptedLoss(predicate=ack_predicate))
    assert outcome["verified"] and outcome["received"] == 300 * KB


def test_receiver_dupacks_on_out_of_order():
    """Out-of-order arrival must trigger immediate duplicate ACKs."""
    lan = LanPair(Simulator(seed=67))
    push_stream(lan, 200 * KB, drop_nth_data_segment(20))
    # The server observed duplicate ACKs for the hole.
    # (Connection is gone; assert via counters on the client instead.)
    # Re-run with a live tap:
    lan2 = LanPair(Simulator(seed=68))
    dupacks = []

    def server():
        listener = lan2.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(200 * KB, 0, 4))
        dupacks.append(conn.tcb.dupacks_received)
        conn.close()

    def client():
        sock = lan2.a.tcp.connect((lan2.ip_b, 8000))
        yield sock.wait_connected()
        got = 0
        while got < 200 * KB:
            piece = yield sock.recv(65536)
            got += len(piece)
        sock.close()

    lan2.hub.loss_model = drop_nth_data_segment(20)
    lan2.b.spawn(server())
    process = lan2.a.spawn(client())
    lan2.sim.run_until_complete(process, deadline=120.0)
    assert dupacks[0] >= 3


def test_karn_no_rtt_sample_from_retransmission():
    """After a retransmission the RTT estimator must not ingest a sample
    for the retransmitted range (Karn's algorithm)."""
    lan = LanPair(Simulator(seed=69))
    samples = []

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(30 * KB, 0, 4))
        samples.append(conn.tcb.rtt.samples_taken)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        got = 0
        while got < 30 * KB:
            piece = yield sock.recv(65536)
            got += len(piece)
        sock.close()

    # Drop the very first data segment: it is the timed one.
    lan.hub.loss_model = drop_nth_data_segment(1)
    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=120.0)
    # Samples may exist from later exchanges but the estimator stayed sane.
    assert samples[0] >= 0  # no crash; and:
    server_side = samples[0]
    assert server_side < 30 * KB // 1460  # far fewer samples than segments


def test_retransmission_counters():
    lan = LanPair(Simulator(seed=70))
    retx = []

    def server():
        listener = lan.b.tcp.listen(8000)
        conn = yield listener.accept()
        yield conn.send(PatternBytes(100 * KB, 0, 4))
        retx.append(conn.tcb.retransmissions)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, 8000))
        yield sock.wait_connected()
        got = 0
        while got < 100 * KB:
            piece = yield sock.recv(65536)
            got += len(piece)
        sock.close()

    lan.hub.loss_model = drop_nth_data_segment(10)
    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=120.0)
    assert retx[0] >= 1

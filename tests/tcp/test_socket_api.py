"""Socket API semantics: event contracts of send/recv/close."""

import pytest

from repro.errors import ConnectionReset
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.util.bytespan import PatternBytes
from repro.util.units import KB

from tests.conftest import LanPair


def connected_pair(lan, port=8000):
    """Establish a connection; returns (client_sock, server_conn)."""
    result = {}

    def server():
        listener = lan.b.tcp.listen(port)
        conn = yield listener.accept()
        result["server"] = conn
        yield lan.sim.timeout(3600.0)  # hold open

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, port))
        yield sock.wait_connected()
        result["client"] = sock

    lan.b.spawn(server())
    process = lan.a.spawn(client())
    lan.sim.run_until_complete(process, deadline=10.0)
    lan.sim.run(until=lan.sim.now + 0.01)
    return result["client"], result["server"]


def test_wait_connected_after_establishment_succeeds_immediately():
    lan = LanPair(Simulator(seed=150))
    client, _server = connected_pair(lan)
    event = client.wait_connected()
    assert event.triggered
    assert event.value is client


def test_recv_zero_bytes_succeeds_empty():
    lan = LanPair(Simulator(seed=151))
    client, _server = connected_pair(lan)
    event = client.recv(0)
    assert event.triggered
    assert len(event.value) == 0


def test_send_event_reports_total_bytes():
    lan = LanPair(Simulator(seed=152))
    client, server = connected_pair(lan)
    outcome = {}

    def sender():
        count = yield client.send(PatternBytes(5 * KB, 0, 2))
        outcome["count"] = count

    process = lan.a.spawn(sender())
    lan.sim.run_until_complete(process, deadline=10.0)
    assert outcome["count"] == 5 * KB


def test_send_on_closed_socket_fails_event():
    from repro.errors import ConnectionError_

    lan = LanPair(Simulator(seed=153))
    client, _server = connected_pair(lan)
    client.abort()
    event = client.send(b"too late")
    assert event.triggered
    with pytest.raises(ConnectionError_):  # reset (abort) or closed
        _ = event.value


def test_pending_send_fails_on_reset():
    """A send blocked on buffer space fails when the peer resets."""
    config = TCPConfig(snd_buffer=2 * KB, rcv_buffer=2 * KB)
    lan = LanPair(Simulator(seed=154), tcp_config=config)
    client, server = connected_pair(lan)
    outcome = {}

    def sender():
        try:
            # Far larger than buffers+window while the peer never reads.
            yield client.send(PatternBytes(64 * KB, 0, 2))
        except ConnectionReset:
            outcome["error"] = "reset"

    process = lan.a.spawn(sender())
    lan.sim.run(until=lan.sim.now + 0.2)
    server.abort()
    lan.sim.run_until_complete(process, deadline=30.0)
    assert outcome["error"] == "reset"


def test_partial_recv_returns_available_data():
    lan = LanPair(Simulator(seed=155))
    client, server = connected_pair(lan)
    outcome = {}

    def exchange():
        yield server.send(b"abc")
        data = yield client.recv(100)  # more than available
        outcome["data"] = data.to_bytes()

    process = lan.a.spawn(exchange())
    lan.sim.run_until_complete(process, deadline=10.0)
    assert outcome["data"] == b"abc"


def test_recv_returns_empty_at_eof():
    lan = LanPair(Simulator(seed=156))
    client, server = connected_pair(lan)
    outcome = {}

    def run():
        server.close()
        data = yield client.recv(100)
        outcome["eof"] = len(data) == 0

    process = lan.a.spawn(run())
    lan.sim.run_until_complete(process, deadline=10.0)
    assert outcome["eof"]


def test_queued_recvs_complete_in_order():
    lan = LanPair(Simulator(seed=157))
    client, server = connected_pair(lan)
    outcome = {}

    def reader():
        first = client.recv_exactly(3)
        second = client.recv_exactly(3)
        a = yield first
        b = yield second
        outcome["parts"] = (a.to_bytes(), b.to_bytes())

    process = lan.a.spawn(reader())
    lan.sim.run(until=lan.sim.now + 0.01)

    def writer():
        yield server.send(b"abcdef")

    lan.b.spawn(writer())
    lan.sim.run_until_complete(process, deadline=10.0)
    assert outcome["parts"] == (b"abc", b"def")


def test_addresses_exposed():
    lan = LanPair(Simulator(seed=158))
    client, server = connected_pair(lan)
    assert client.remote_address == (lan.ip_b, 8000)
    assert server.local_address == (lan.ip_b, 8000)
    assert server.remote_address[0] == lan.ip_a

"""Tests for the TCP send and receive buffers (incl. reassembly)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.recv_buffer import ReceiveBuffer, RetentionPolicy
from repro.tcp.send_buffer import SendBuffer
from repro.util.bytespan import PatternBytes, RealBytes


# ---------------------------------------------------------------- send buffer
def test_send_buffer_accepts_up_to_capacity():
    buffer = SendBuffer(100)
    assert buffer.append(RealBytes(b"x" * 60)) == 60
    assert buffer.append(RealBytes(b"y" * 60)) == 40
    assert buffer.free_space == 0
    assert len(buffer) == 100


def test_send_buffer_ack_frees_space():
    buffer = SendBuffer(100)
    buffer.append(RealBytes(b"a" * 100))
    assert buffer.ack_to(30) == 30
    assert buffer.free_space == 30
    assert buffer.una_offset == 30
    assert buffer.ack_to(20) == 0  # going backwards is a no-op


def test_send_buffer_data_range_for_retransmit():
    buffer = SendBuffer(100)
    buffer.append(RealBytes(b"0123456789"))
    assert buffer.data_range(2, 6).to_bytes() == b"2345"
    buffer.ack_to(4)
    assert buffer.data_range(4, 8).to_bytes() == b"4567"


def test_send_buffer_capacity_validated():
    with pytest.raises(ValueError):
        SendBuffer(0)


# ----------------------------------------------------------------- recv buffer
def test_in_order_insert_and_read():
    buffer = ReceiveBuffer(1000)
    assert buffer.insert(0, RealBytes(b"hello")) == 5
    assert buffer.rcv_nxt_offset == 5
    assert buffer.available == 5
    assert buffer.read(5).to_bytes() == b"hello"
    assert buffer.read_offset == 5


def test_out_of_order_held_until_gap_fills():
    buffer = ReceiveBuffer(1000)
    assert buffer.insert(5, RealBytes(b"world")) == 0
    assert buffer.available == 0
    assert buffer.out_of_order_bytes == 5
    assert buffer.first_gap() == (0, 5)
    assert buffer.insert(0, RealBytes(b"hell o"[:5])) == 10  # gap fill drains
    assert buffer.available == 10
    assert buffer.first_gap() is None


def test_duplicate_data_discarded():
    buffer = ReceiveBuffer(1000)
    buffer.insert(0, RealBytes(b"abcde"))
    assert buffer.insert(0, RealBytes(b"abcde")) == 0
    assert buffer.bytes_duplicated == 5
    # Partial overlap: only the new tail is kept.
    assert buffer.insert(3, RealBytes(b"defgh")) == 3
    assert buffer.read(8).to_bytes() == b"abcdefgh"


def test_overlapping_out_of_order_segments_clipped():
    buffer = ReceiveBuffer(1000)
    buffer.insert(10, RealBytes(b"KLMNO"))  # [10,15)
    buffer.insert(8, RealBytes(b"IJKLMNOP"))  # [8,16) overlaps
    assert buffer.out_of_order_bytes == 8  # [8,16) held once
    buffer.insert(0, RealBytes(b"ABCDEFGH"))
    assert buffer.read(16).to_bytes() == b"ABCDEFGHIJKLMNOP"


def test_window_shrinks_with_buffered_data():
    buffer = ReceiveBuffer(100)
    buffer.insert(0, RealBytes(b"x" * 30))
    assert buffer.window() == 70
    buffer.insert(50, RealBytes(b"y" * 10))  # out of order counts too
    assert buffer.window() == 60
    buffer.read(30)
    assert buffer.window() == 90


def test_data_beyond_window_clipped():
    buffer = ReceiveBuffer(10)
    assert buffer.insert(0, RealBytes(b"a" * 20)) == 10
    assert buffer.window() == 0


def test_window_zero_rejects_new_data():
    buffer = ReceiveBuffer(10)
    buffer.insert(0, RealBytes(b"a" * 10))
    assert buffer.insert(10, RealBytes(b"b")) == 0


def test_peek_unread_serves_recovery_ranges():
    buffer = ReceiveBuffer(100)
    buffer.insert(0, RealBytes(b"0123456789"))
    buffer.read(4)
    assert buffer.peek_unread(4, 8).to_bytes() == b"4567"
    assert buffer.peek_unread(0, 4).to_bytes() == b""  # already read


class RecordingRetention(RetentionPolicy):
    def __init__(self):
        self.reads = []
        self.overflow = 0

    def on_read(self, start_offset, span):
        self.reads.append((start_offset, span.to_bytes()))

    def overflow_bytes(self):
        return self.overflow


def test_retention_hook_sees_read_bytes():
    buffer = ReceiveBuffer(100)
    retention = RecordingRetention()
    buffer.retention = retention
    buffer.insert(0, RealBytes(b"abcdef"))
    buffer.read(4)
    assert retention.reads == [(0, b"abcd")]


def test_retention_overflow_consumes_window():
    buffer = ReceiveBuffer(100)
    retention = RecordingRetention()
    retention.overflow = 25
    buffer.retention = retention
    assert buffer.window() == 75


# -------------------------------------------------------------------- property
@settings(max_examples=50)
@given(st.data())
def test_prop_reassembly_matches_reference_stream(data):
    """Random segment arrival order must reassemble the exact stream."""
    stream = PatternBytes(data.draw(st.integers(1, 400)), 0, 3)
    total = len(stream)
    # Split into random segments.
    cuts = sorted(data.draw(st.sets(st.integers(1, total - 1), max_size=8))) if total > 1 else []
    bounds = [0] + cuts + [total]
    segments = [
        (bounds[i], stream.slice(bounds[i], bounds[i + 1]))
        for i in range(len(bounds) - 1)
    ]
    order = data.draw(st.permutations(segments))
    buffer = ReceiveBuffer(1000)
    advanced_total = 0
    for start, span in order:
        advanced_total += buffer.insert(start, span)
    assert advanced_total == total
    assert buffer.read(total).to_bytes() == stream.to_bytes()
    assert buffer.out_of_order_bytes == 0

"""Tests for the sampling profiler: classification, attribution, report."""

import json
import threading
import time

import pytest

from repro.errors import ReproError
from repro.metrics import profile
from repro.metrics.profile import SamplingProfiler, _classify
from repro.sim.scheduler import Scheduler
from repro.tcp.seqspace import wrap


def test_classify_maps_paths_to_layers():
    assert _classify("/x/src/repro/sim/scheduler.py") == "kernel"
    assert _classify("src\\repro\\tcp\\timers.py") == "tcp"  # windows separators
    assert _classify("/x/src/repro/sttcp/engine.py") == "tcp"
    assert _classify("/x/src/repro/net/medium.py") == "net"
    assert _classify("/x/src/repro/harness/cli.py") == "harness"
    assert _classify("/x/src/repro/__init__.py") == "other"
    assert _classify("/usr/lib/python3.11/posixpath.py") is None


def test_rejects_non_positive_interval():
    with pytest.raises(ReproError):
        SamplingProfiler(0.0)
    with pytest.raises(ReproError):
        SamplingProfiler(-1.0)


def test_start_twice_rejected_and_stop_is_idempotent():
    profiler = SamplingProfiler()
    profiler.start()
    try:
        with pytest.raises(ReproError):
            profiler.start()
    finally:
        profiler.stop()
    profiler.stop()  # second stop is a no-op
    assert not profiler.running


def test_start_outside_main_thread_rejected():
    outcome = {}

    def target():
        try:
            SamplingProfiler().start()
            outcome["error"] = None
        except ReproError as exc:
            outcome["error"] = exc

    worker = threading.Thread(target=target)
    worker.start()
    worker.join()
    assert isinstance(outcome["error"], ReproError)


def test_busy_scheduler_loop_attributed_to_kernel():
    sched = Scheduler()

    def chain():
        sched.schedule_after(1e-6, chain)

    chain()
    deadline = time.perf_counter() + 0.25
    with profile.sample(interval=0.0005) as profiler:
        while time.perf_counter() < deadline:
            sched.run_until(max_events=20_000)
    report = profiler.report()
    assert report["samples"] > 10
    assert report["wall_time"] > 0.2
    # Essentially all work happens inside repro/sim: the kernel layer must
    # dominate the split.
    assert report["layers"]["kernel"]["fraction"] > 0.5
    total_fraction = sum(info["fraction"] for info in report["layers"].values())
    assert total_fraction == pytest.approx(1.0)
    assert any(f["layer"] == "kernel" for f in report["top_functions"])
    assert "kernel" in profiler.summary()


def test_report_written_as_json(tmp_path):
    path = tmp_path / "nested" / "profile.json"
    with profile.sample(interval=0.001, path=path) as profiler:
        time.sleep(0.02)
    report = json.loads(path.read_text())
    assert report["interval"] == 0.001
    assert report["samples"] == profiler.samples
    assert set(report) == {
        "interval",
        "samples",
        "wall_time",
        "layers",
        "top_functions",
    }


def test_empty_profile_reports_cleanly():
    profiler = SamplingProfiler()
    report = profiler.report()
    assert report["samples"] == 0
    assert report["layers"] == {}
    assert "no samples" in profiler.summary()


# -- batched-dispatch attribution ------------------------------------------


class FakeCode:
    def __init__(self, filename, name):
        self.co_filename = filename
        self.co_name = name


class FakeFrame:
    """Duck-typed frame: _sample touches f_code, f_locals and f_back only."""

    def __init__(self, code, f_locals=None, back=None):
        self.f_code = code
        self.f_locals = f_locals or {}
        self.f_back = back


_DRAIN_CODE = FakeCode("/x/src/repro/sim/scheduler.py", "_drain_ready")


def test_drain_loop_sample_attributed_to_active_callback():
    # A sample landing on the drain loop's dispatch line belongs to the
    # callback being dispatched (here a repro.tcp function), not to the
    # kernel layer the scheduler frame would classify as.
    profiler = SamplingProfiler()
    frame = FakeFrame(_DRAIN_CODE, {"callback": wrap})
    profiler._sample(0, frame)
    assert profiler.layer_samples == {"tcp": 1}
    assert profiler.function_samples == {("tcp", "seqspace.py:wrap"): 1}


def test_drain_loop_sample_without_resolvable_callback_stays_kernel():
    profiler = SamplingProfiler()
    # No callback local (e.g. sampled during wheel maintenance).
    profiler._sample(0, FakeFrame(_DRAIN_CODE))
    # A C-level callback has no __code__ to classify.
    profiler._sample(0, FakeFrame(_DRAIN_CODE, {"callback": len}))
    # A non-repro callback classifies to None and keeps kernel credit.
    profiler._sample(0, FakeFrame(_DRAIN_CODE, {"callback": json.loads}))
    assert profiler.layer_samples == {"kernel": 3}
    assert all(layer == "kernel" for layer, _ in profiler.function_samples)


def test_dispatch_attribution_unwraps_bound_methods():
    profiler = SamplingProfiler()
    sched = Scheduler()
    frame = FakeFrame(
        FakeCode("/x/src/repro/sim/scheduler.py", "_run_heap_event"),
        {"callback": sched.run_next},  # bound method of a kernel object
    )
    profiler._sample(0, frame)
    assert profiler.layer_samples == {"kernel": 1}
    assert profiler.function_samples == {("kernel", "scheduler.py:run_next"): 1}


def test_non_dispatch_kernel_frames_keep_their_own_credit():
    profiler = SamplingProfiler()
    frame = FakeFrame(
        FakeCode("/x/src/repro/sim/scheduler.py", "_advance"),
        {"callback": wrap},  # irrelevant: not a dispatch function
    )
    profiler._sample(0, frame)
    assert profiler.function_samples == {("kernel", "scheduler.py:_advance"): 1}

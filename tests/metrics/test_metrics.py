"""Tests for metric collection."""

from repro.apps.workload import echo_workload, upload_workload
from repro.harness.runner import run_workload
from repro.metrics.collectors import (
    ChannelTraffic,
    ExperimentSample,
    HostTraffic,
    summarize,
)
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


def test_host_traffic_capture():
    scenario = make_scenario(seed=72)
    run_workload(echo_workload(10), scenario=scenario, deadline=60.0)
    client = HostTraffic.capture(scenario.client)
    primary = HostTraffic.capture(scenario.primary)
    assert client.tx_frames > 0
    assert client.rx_frames > 0
    assert primary.tcp_segments_demuxed > 0
    assert client.name == "client"


def test_channel_traffic_capture():
    scenario = make_scenario(seed=73)
    run_workload(upload_workload(128 * KB), scenario=scenario, deadline=60.0)
    channel = ChannelTraffic.capture(scenario.pair)
    assert channel.backup_acks_sent > 0
    assert channel.channel_bytes > 0
    assert channel.retx_requests == 0  # no tap loss in this run


def test_summarize_means():
    samples = [
        ExperimentSample("a", total_time=1.0, failover_time=0.2),
        ExperimentSample("a", total_time=3.0, failover_time=0.4),
    ]
    import pytest

    summary = summarize(samples)
    assert summary["total_time"] == pytest.approx(2.0)
    assert summary["failover_time"] == pytest.approx(0.3)


def test_summarize_handles_missing_failovers():
    samples = [ExperimentSample("a", total_time=1.0)]
    assert "failover_time" not in summarize(samples)
    assert summarize([]) == {}

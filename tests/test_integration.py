"""Whole-system integration tests: mixed workloads, concurrent clients,
failover under combined load, switched-topology parity."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.client import client_session
from repro.apps.workload import (
    bulk_workload,
    echo_workload,
    interactive_workload,
    upload_workload,
)
from repro.harness.calibrate import FAST_LAN
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB


def run_mixed_clients(scenario, workloads, deadline=300.0):
    """Run several client sessions concurrently; returns their results."""
    scenario.start_service()
    results = []

    def one(workload):
        result = yield scenario.client.spawn(
            client_session(scenario.client, scenario.service_addr, workload)
        )
        results.append(result)

    def driver():
        processes = [
            scenario.client.spawn(one(workload), f"mixed-{index}")
            for index, workload in enumerate(workloads)
        ]
        for process in processes:
            yield process

    handle = scenario.client.spawn(driver(), "driver")
    scenario.sim.run_until_complete(handle, deadline=deadline)
    return results


MIXED = [
    echo_workload(200),
    interactive_workload(20),
    bulk_workload(256 * KB),
    upload_workload(256 * KB),
]


def test_mixed_workloads_standard_tcp():
    scenario = Scenario(profile=FAST_LAN, sttcp=None, seed=160)
    results = run_mixed_clients(scenario, MIXED)
    assert len(results) == 4
    assert all(r.error is None and r.verified for r in results)


def test_mixed_workloads_with_failover():
    """Four concurrent connections of different characters all survive one
    mid-run primary crash."""
    scenario = Scenario(profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=161)
    # Clients start at t=0 here (no runner offset); the joint run lasts
    # ~90 ms, so crash a third of the way in.
    scenario.crash_primary_at(0.03)
    results = run_mixed_clients(scenario, MIXED)
    assert len(results) == 4
    assert all(r.error is None and r.verified for r in results)
    assert scenario.pair.failed_over
    assert len(scenario.pair.backup_engine.shadow_connections) == 4


def test_mixed_workloads_failover_switched_topology():
    scenario = Scenario(
        profile=FAST_LAN,
        topology="switched",
        sttcp=STTCPConfig(hb_interval=0.05),
        seed=162,
    )
    scenario.crash_primary_at(0.03)
    results = run_mixed_clients(scenario, MIXED)
    assert all(r.error is None and r.verified for r in results)
    assert scenario.pair.failed_over


def test_hub_and_switched_topologies_agree_on_failover_cost():
    """The tapping mechanism (promiscuous hub vs multicast-MAC switch)
    must not change failover behaviour materially."""
    costs = {}
    for topology in ("hub", "switched"):
        baseline = run_workload(
            echo_workload(50),
            profile=FAST_LAN,
            topology=topology,
            sttcp=STTCPConfig(hb_interval=0.05),
            seed=163,
            deadline=120.0,
        ).require_clean()
        scenario = Scenario(
            profile=FAST_LAN, topology=topology, sttcp=STTCPConfig(hb_interval=0.05), seed=163
        )
        failed = run_workload(
            echo_workload(50),
            scenario=scenario,
            crash_at=0.1 + baseline.total_time / 2,
            deadline=120.0,
        ).require_clean()
        costs[topology] = failed.total_time - baseline.total_time
    assert costs["switched"] == pytest.approx(costs["hub"], abs=0.15)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    crash_fraction=st.floats(0.05, 0.95),
    seed=st.integers(0, 2**16),
    clients=st.integers(2, 4),
)
def test_prop_concurrent_clients_all_survive_any_crash_time(
    crash_fraction, seed, clients
):
    """N concurrent echo clients; primary crashes at a random point of the
    joint run; every client completes verified."""
    scenario = Scenario(profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=seed)
    # Clients start at t=0; the joint run lasts ~20 ms per client.
    scenario.crash_primary_at(0.002 + crash_fraction * 0.02 * clients)
    results = run_mixed_clients(
        scenario, [echo_workload(60) for _ in range(clients)], deadline=300.0
    )
    assert len(results) == clients
    assert all(r.error is None and r.verified for r in results)

"""Tests for the FT-TCP restart-and-replay baseline (paper §2)."""

import pytest

from repro.apps.workload import bulk_workload, echo_workload, upload_workload
from repro.ftcp.baseline import FTCPConfig
from repro.harness.calibrate import FAST_LAN
from repro.harness.runner import run_workload
from repro.harness.scenario import Scenario
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB, MB


def make_ftcp_scenario(seed=85, **config_kwargs):
    config = FTCPConfig(hb_interval=0.05, **config_kwargs)
    return Scenario(profile=FAST_LAN, sttcp=config, seed=seed)


def failover_pair(workload, seed=85, **config_kwargs):
    baseline = run_workload(
        workload, scenario=make_ftcp_scenario(seed, **config_kwargs), deadline=600.0
    ).require_clean()
    scenario = make_ftcp_scenario(seed, **config_kwargs)
    crash_at = 0.1 + baseline.total_time / 2
    run = run_workload(workload, scenario=scenario, crash_at=crash_at, deadline=600.0)
    return scenario, run, baseline


def test_config_requires_ftcp_type():
    from repro.ftcp.baseline import FTCPBackup
    from repro.host.host import Host
    from repro.sim.simulator import Simulator
    from repro.net.addresses import ip

    sim = Simulator()
    host = Host(sim, "b")
    nic = host.add_nic()
    host.configure_ip(nic, ip("10.0.0.2"), 24)
    with pytest.raises(TypeError):
        FTCPBackup(host, ip("10.0.0.100"), 8000, ip("10.0.0.1"), STTCPConfig())


def test_client_survives_ftcp_failover():
    scenario, run, _baseline = failover_pair(echo_workload(20))
    assert run.result.error is None
    assert run.result.verified
    assert scenario.pair.failed_over


def test_recovery_delay_includes_restart_and_replay():
    scenario, run, _ = failover_pair(
        upload_workload(256 * KB), restart_delay=0.2, replay_rate=1.0 * MB
    )
    backup = scenario.pair.backup_engine
    assert backup.replay_bytes > 0
    expected = 0.2 + backup.replay_bytes / (1.0 * MB)
    assert backup.recovery_delay == pytest.approx(expected)
    takeover_gap = backup.takeover_time - backup.detection_time
    assert takeover_gap >= expected


def test_replay_cost_grows_with_history():
    """The paper's critique: FT-TCP recovery time grows with connection
    history; ST-TCP's does not."""
    replay_bytes = {}
    delays = {}
    for fraction in (0.2, 0.8):
        baseline = run_workload(
            upload_workload(512 * KB),
            scenario=make_ftcp_scenario(86, replay_rate=1.0 * MB),
            deadline=600.0,
        ).require_clean()
        scenario = make_ftcp_scenario(86, replay_rate=1.0 * MB)
        crash_at = 0.1 + fraction * baseline.total_time
        run_workload(
            upload_workload(512 * KB), scenario=scenario, crash_at=crash_at, deadline=600.0
        )
        backup = scenario.pair.backup_engine
        replay_bytes[fraction] = backup.replay_bytes
        delays[fraction] = backup.recovery_delay
    assert replay_bytes[0.8] > replay_bytes[0.2] * 2
    # The delay difference is exactly the extra replay time.
    extra = (replay_bytes[0.8] - replay_bytes[0.2]) / (1.0 * MB)
    assert delays[0.8] - delays[0.2] == pytest.approx(extra)


def test_sttcp_beats_ftcp_failover():
    """Head-to-head on the same workload, seed, and detection settings."""
    workload = bulk_workload(256 * KB)
    # ST-TCP.
    st_baseline = run_workload(
        workload, scenario=Scenario(profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=87),
        deadline=600.0,
    ).require_clean()
    st_scenario = Scenario(profile=FAST_LAN, sttcp=STTCPConfig(hb_interval=0.05), seed=87)
    st_run = run_workload(
        workload, scenario=st_scenario, crash_at=0.1 + st_baseline.total_time / 2, deadline=600.0
    ).require_clean()
    st_failover = st_run.total_time - st_baseline.total_time
    # FT-TCP.
    ft_scenario, ft_run, ft_baseline = failover_pair(workload, seed=87)
    ft_failover = ft_run.total_time - ft_baseline.total_time
    assert ft_run.result.verified
    assert ft_failover > st_failover + 0.3  # at least the restart delay


def test_keepalives_flow_during_recovery():
    scenario, run, _ = failover_pair(
        upload_workload(256 * KB), restart_delay=0.5, keepalive_interval=0.05
    )
    assert run.result.error is None
    # The keepalive timer fired repeatedly during the recovery window.
    assert scenario.pair.backup_engine._keepalive_timer.fired_count >= 3

"""Smoke/shape tests for every experiment generator (tiny scale)."""

import pytest

from repro.harness.experiments import (
    ExperimentScale,
    PAPER_SCALE,
    QUICK_SCALE,
    ablation_ftcp,
    ablation_logger,
    ablation_overhead,
    ablation_sync,
    default_scale,
    figure5,
    figure6,
    format_figure5,
    format_figure6,
    format_table1,
    format_table2,
    table1,
    table2,
)
from repro.util.units import KB

TINY = ExperimentScale(
    echo_exchanges=10,
    interactive_exchanges=5,
    bulk_sizes=(64 * KB,),
    repeats=1,
    hb_grid=(0.2, 0.05),
)


def test_default_scale_selection(monkeypatch):
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert default_scale() == QUICK_SCALE
    monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
    assert default_scale() == PAPER_SCALE
    monkeypatch.delenv("REPRO_PAPER_SCALE")
    monkeypatch.setenv("REPRO_SCALE", "2")
    scale = default_scale()
    assert scale.echo_exchanges == 60


def test_table1_shape_and_transparency():
    records = table1(TINY)
    assert [r["config"] for r in records] == [
        "Standard TCP",
        "ST-TCP 200ms HB",
        "ST-TCP 50ms HB",
    ]
    standard = records[0]
    for sttcp_row in records[1:]:
        for column in ("echo", "interactive"):
            # The headline Table 1 claim: ST-TCP ≈ standard TCP.
            assert sttcp_row[column] == pytest.approx(standard[column], rel=0.02)
    text = format_table1(records)
    assert "Standard TCP" in text


def test_table2_failover_grows_with_hb():
    records = table2(TINY)
    by_config = {r["config"]: r for r in records}
    assert (
        by_config["ST-TCP 200ms HB"]["echo"] > by_config["ST-TCP 50ms HB"]["echo"]
    )
    text = format_table2(records)
    assert "failover" in text


def test_figure5_shape():
    points = figure5("echo", TINY, hb_sweep=(0.05, 0.3))
    assert len(points) == 2
    assert points[1]["failure_time"] > points[0]["failure_time"]
    # No-failure time is flat across HB intervals.
    assert points[0]["no_failure_time"] == pytest.approx(
        points[1]["no_failure_time"], rel=0.05
    )
    assert "heartbeat" in format_figure5(points, "echo")


def test_figure5_rejects_unknown_application():
    with pytest.raises(ValueError):
        figure5("bulk", TINY)


def test_figure6_shape():
    scale = ExperimentScale(10, 5, (32 * KB, 128 * KB), 1, hb_grid=(0.05,))
    points = figure6(scale)
    assert len(points) == 2
    small, large = points
    assert large["no_failure_time"] > small["no_failure_time"]
    assert large["failure_time"] > large["no_failure_time"]
    assert "bulk" in format_figure6(points).lower()


def test_ablation_sync_shape():
    records = ablation_sync(upload_size=64 * KB, sync_times=(0.05,), x_fractions=(0.25, 1.0))
    by_x = {r["x_fraction"]: r for r in records}
    assert by_x[0.25]["acks_sent"] > by_x[1.0]["acks_sent"]


def test_ablation_ftcp_shape():
    records = ablation_ftcp(bulk_size=64 * KB, crash_fractions=(0.5,))
    by_protocol = {r["protocol"]: r for r in records}
    assert by_protocol["FT-TCP"]["failover_time"] > by_protocol["ST-TCP"]["failover_time"]


def test_ablation_overhead_matches_paper_arithmetic():
    records = ablation_overhead(upload_size=256 * KB, second_buffers=(4 * KB,))
    record = records[0]
    assert record["x_bytes"] == 3072
    # §4.3: one 128 B message per 3 KB ≈ 4.17%; we also count the reply,
    # so the measured overhead lands in the 3–9% band.
    assert 3.0 < record["overhead_percent"] < 9.0


def test_ablation_logger_discriminates():
    records = ablation_logger()
    by_logger = {r["logger"]: r for r in records}
    assert by_logger[True]["completed"]
    assert by_logger[True]["verified"]
    assert by_logger[True]["logger_bytes_recovered"] > 0
    assert not by_logger[False]["completed"]

"""Datapath-arm differential: ``REPRO_DATAPATH=batch`` vs ``object``.

The batch datapath — slot-drain dispatch, pooled zero-copy payloads,
precomputed wire headers, batched backup-tap reconciliation — must be
observably invisible.  Both arms run a full Table 1 grid, a Figure 5
sweep, and the entire drill conformance corpus; every result store hash
and every drill report must be byte-identical.
"""

import hashlib
from pathlib import Path

import pytest

import repro.harness.experiments  # noqa: F401 — registers the specs
from repro.drill import format_report, run_drill_path
from repro.harness.executor import run_experiment
from repro.harness.experiments import QUICK_SCALE
from repro.harness.results import ResultStore, canonical_json, cell_key
from repro.sim.datapath import DATAPATH_ENV, batch_enabled

DRILL_SCRIPTS = Path(__file__).parent.parent / "drill" / "scripts"


def _select_arm(monkeypatch, arm):
    """Pin the datapath arm; components read it at construction time."""
    if arm == "object":
        monkeypatch.setenv(DATAPATH_ENV, "object")
    else:
        monkeypatch.delenv(DATAPATH_ENV, raising=False)
    assert batch_enabled() == (arm == "batch")


def _run_grid(tmp_path, monkeypatch, arm, name, **options):
    _select_arm(monkeypatch, arm)
    store = ResultStore(tmp_path / f"{name}_{arm}.jsonl")
    result = run_experiment(name, scale=QUICK_SCALE, jobs=1, store=store, **options)
    assert result.grid.executed == len(result.cells)  # nothing cached
    keyed = {
        cell_key(cell): canonical_json(record)
        for cell, record in zip(result.cells, result.grid.records)
    }
    digest = hashlib.sha256(
        canonical_json(sorted(keyed.items())).encode()
    ).hexdigest()
    return keyed, digest


@pytest.mark.parametrize(
    "name, options",
    [
        ("table1", {"base_seed": 100}),
        ("figure5", {"application": "echo", "base_seed": 100}),
    ],
)
def test_datapath_arms_produce_identical_result_store_content(
    tmp_path, monkeypatch, name, options
):
    batch_keyed, batch_digest = _run_grid(tmp_path, monkeypatch, "batch", name, **options)
    object_keyed, object_digest = _run_grid(tmp_path, monkeypatch, "object", name, **options)
    assert batch_keyed.keys() == object_keyed.keys()
    for key in batch_keyed:
        assert batch_keyed[key] == object_keyed[key]
    assert batch_digest == object_digest


def test_datapath_arms_produce_identical_drill_reports(monkeypatch):
    """Every script in the conformance corpus, both arms, one report
    each — byte-identical, including per-step wire-format expectations
    (the drill peers assert on serialized segments, so this exercises
    the precomputed-header path end to end)."""
    _select_arm(monkeypatch, "batch")
    batch_report = format_report(run_drill_path(DRILL_SCRIPTS))
    _select_arm(monkeypatch, "object")
    object_report = format_report(run_drill_path(DRILL_SCRIPTS))
    assert batch_report == object_report
    assert "scripts passed" in batch_report


def test_scale_rung_record_identical_across_arms(tmp_path, monkeypatch):
    """One churn rung (the batch datapath's home turf: pooled payloads,
    batched tap reconciliation) produces the same hashed record on the
    reference arm."""
    from repro.harness.experiments import scale_ladder

    _select_arm(monkeypatch, "batch")
    batch_record = scale_ladder(ladder=(25,), store=None, base_seed=77)[0]
    _select_arm(monkeypatch, "object")
    object_record = scale_ladder(ladder=(25,), store=None, base_seed=77)[0]
    assert canonical_json(batch_record) == canonical_json(object_record)
    assert batch_record["verified"]

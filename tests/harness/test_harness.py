"""Tests for the experiment harness: scenario wiring, runner, tables."""

import pytest

from repro.apps.workload import bulk_workload, echo_workload
from repro.harness.calibrate import (
    FAST_LAN,
    PAPER_TESTBED,
    expected_bulk_throughput,
    expected_echo_exchange_time,
)
from repro.harness.runner import measure_failover_time, run_workload
from repro.harness.scenario import SERVICE_IP, Scenario
from repro.harness.tables import format_table, rows_from_records
from repro.sttcp.config import STTCPConfig
from repro.util.units import KB


def test_hub_scenario_wiring_standard():
    scenario = Scenario(profile=FAST_LAN, sttcp=None, seed=1)
    assert scenario.backup is None
    assert scenario.pair is None
    assert scenario.hub is not None
    assert SERVICE_IP in scenario.primary.local_ips()


def test_hub_scenario_wiring_sttcp():
    scenario = Scenario(profile=FAST_LAN, sttcp=STTCPConfig(), seed=1)
    assert scenario.backup is not None
    assert scenario.backup.nics[0].promiscuous
    assert SERVICE_IP in scenario.backup.local_ips()
    assert SERVICE_IP in scenario.backup.arp.suppressed_ips
    assert scenario.pair is not None
    assert not scenario.backup.tcp.reset_on_unmatched


def test_switched_scenario_wiring():
    scenario = Scenario(profile=FAST_LAN, topology="switched", sttcp=STTCPConfig(), seed=1)
    assert scenario.switch is not None
    assert scenario.gateway is not None
    assert scenario.gateway.ip_layer.forwarding
    # The gateway pins SVI to a multicast MAC (§3.1).
    sme = scenario.gateway.arp.lookup(SERVICE_IP)
    assert sme is not None and sme.is_multicast
    # The backup is NOT promiscuous in the switched architecture.
    assert not scenario.backup.nics[0].promiscuous


def test_unknown_topology_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Scenario(topology="ring")


def test_run_workload_produces_clean_result():
    run = run_workload(echo_workload(5), profile=FAST_LAN, seed=2, deadline=60.0)
    run.require_clean()
    assert run.failover is None  # standard TCP run


def test_require_clean_raises_on_error():
    from repro.errors import ReproError
    from repro.apps.workload import RunResult
    from repro.harness.runner import ExperimentRun

    bad = ExperimentRun(
        result=RunResult(echo_workload(1), 0, 1, 0, 0, False, error="boom"),
        failover=None,
        scenario=None,
    )
    with pytest.raises(ReproError):
        bad.require_clean()


def test_measure_failover_time_structure():
    sample = measure_failover_time(
        echo_workload(20), STTCPConfig(hb_interval=0.05), profile=FAST_LAN, seed=3
    )
    assert sample["failure_time"] > sample["no_failure_time"]
    assert sample["failover_time"] == pytest.approx(
        sample["failure_time"] - sample["no_failure_time"]
    )
    assert sample["detection_latency"] >= 3 * 0.05


def test_calibration_analytics_close_to_simulation():
    echo_estimate = expected_echo_exchange_time(PAPER_TESTBED)
    run = run_workload(echo_workload(50), profile=PAPER_TESTBED, seed=4, deadline=120.0)
    measured = run.total_time / 50
    assert measured == pytest.approx(echo_estimate, rel=0.15)
    bulk_estimate = expected_bulk_throughput(PAPER_TESTBED)
    run = run_workload(bulk_workload(512 * KB), profile=PAPER_TESTBED, seed=4, deadline=120.0)
    measured_rate = 512 * KB / run.total_time
    assert measured_rate == pytest.approx(bulk_estimate, rel=0.30)


def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [["echo", 1.5], ["interactive", 20.25]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.500" in text and "20.250" in text


def test_rows_from_records_projection():
    records = [{"a": 1, "b": 2}, {"a": 3}]
    assert rows_from_records(records, ["a", "b"]) == [[1, 2], [3, "-"]]


def test_same_seed_reproduces_exact_times():
    first = run_workload(echo_workload(10), profile=FAST_LAN, seed=5, deadline=60.0)
    second = run_workload(echo_workload(10), profile=FAST_LAN, seed=5, deadline=60.0)
    assert first.total_time == second.total_time


def test_different_seeds_differ():
    first = run_workload(
        echo_workload(10), profile=FAST_LAN, sttcp=STTCPConfig(), seed=6, deadline=60.0
    )
    second = run_workload(
        echo_workload(10), profile=FAST_LAN, sttcp=STTCPConfig(), seed=7, deadline=60.0
    )
    # ISNs and hence exact timings differ across seeds.
    assert first.scenario.primary.tcp.segments_demuxed > 0
    assert second.scenario.primary.tcp.segments_demuxed > 0

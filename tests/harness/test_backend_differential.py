"""Scheduler-backend differential over full grids.

The determinism contract says the timing-wheel and heap-only backends
dispatch identically, so every *result* — not just event ordering — must
be bit-identical: same cell keys, same canonical record JSON, for a full
Table 1 grid and a full Figure 5 sweep.
"""

import hashlib

import pytest

import repro.harness.experiments  # noqa: F401 — registers the specs
from repro.harness.executor import run_experiment
from repro.harness.experiments import QUICK_SCALE
from repro.harness.results import ResultStore, canonical_json, cell_key
from repro.sim.scheduler import BACKEND_ENV, Scheduler


def _run_grid(tmp_path, monkeypatch, backend, name, **options):
    if backend == "heap":
        monkeypatch.setenv(BACKEND_ENV, "heap")
    else:
        monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert (Scheduler()._wheel is None) == (backend == "heap")
    store = ResultStore(tmp_path / f"{name}_{backend}.jsonl")
    result = run_experiment(name, scale=QUICK_SCALE, jobs=1, store=store, **options)
    assert result.grid.executed == len(result.cells)  # nothing cached
    keyed = {
        cell_key(cell): canonical_json(record)
        for cell, record in zip(result.cells, result.grid.records)
    }
    digest = hashlib.sha256(
        canonical_json(sorted(keyed.items())).encode()
    ).hexdigest()
    return keyed, digest


@pytest.mark.parametrize(
    "name, options",
    [
        ("table1", {"base_seed": 100}),
        ("figure5", {"application": "echo", "base_seed": 100}),
    ],
)
def test_backends_produce_identical_result_store_content(
    tmp_path, monkeypatch, name, options
):
    wheel_keyed, wheel_digest = _run_grid(tmp_path, monkeypatch, "wheel", name, **options)
    heap_keyed, heap_digest = _run_grid(tmp_path, monkeypatch, "heap", name, **options)
    assert wheel_keyed.keys() == heap_keyed.keys()
    for key in wheel_keyed:
        assert wheel_keyed[key] == heap_keyed[key]
    assert wheel_digest == heap_digest

"""Tests for the experiment CLI and record exports."""

import json

import pytest

from repro.harness.cli import build_parser, main
from repro.metrics.report import load_records, records_to_csv, records_to_json


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("table1", "table2", "figure5", "figure6", "ablations", "demo"):
        args = parser.parse_args([command] if command != "figure5" else [command, "--app", "echo"])
        assert args.command == command
    assert parser.parse_args(["drill", "some/path"]).command == "drill"


def test_drill_command_reports_per_script_table(capsys, tmp_path):
    from pathlib import Path

    scripts = Path(__file__).parent.parent / "drill" / "scripts"
    single = scripts / "t01_handshake_3way.py"
    json_path = tmp_path / "drill.json"
    assert main(["drill", str(single), "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "t01_handshake_3way" in out and "PASS" in out
    assert "1/1 scripts passed" in out
    assert json.loads(json_path.read_text())[0]["passed"] is True


def test_drill_command_fails_on_broken_script(capsys):
    from pathlib import Path

    broken = Path(__file__).parent.parent / "drill" / "broken" / "b01_wrong_ack.py"
    assert main(["drill", str(broken)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "field ack: expected 2, actual 1" in out


def test_demo_command_runs(capsys):
    assert main(["demo", "--hb", "0.05", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "failover_time" in out
    assert "detection_latency" in out


def test_table1_command_with_exports(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.0")  # quick grid
    json_path = tmp_path / "t1.json"
    csv_path = tmp_path / "t1.csv"
    assert (
        main(["table1", "--quick", "--json", str(json_path), "--csv", str(csv_path)])
        == 0
    )
    out = capsys.readouterr().out
    assert "Standard TCP" in out
    records = load_records(json_path)
    assert records[0]["config"] == "Standard TCP"
    header = csv_path.read_text().splitlines()[0]
    assert "config" in header


def test_profile_flag_writes_report_next_to_store(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    store = tmp_path / "results.jsonl"
    assert main(["table1", "--quick", "--store", str(store), "--profile"]) == 0
    report_path = tmp_path / "profile_table1.json"
    report = json.loads(report_path.read_text())
    assert report["samples"] >= 0
    assert "layers" in report
    assert "profile:" in capsys.readouterr().err


def test_figure5_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "1.0")
    assert main(["figure5", "--app", "echo", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "heartbeat" in out


def test_records_roundtrip(tmp_path):
    records = [
        {"a": 1.23456789012, "b": "x", "c": True},
        {"a": float("inf"), "d": 4},
    ]
    path = records_to_json(records, tmp_path / "r.json")
    loaded = load_records(path)
    assert loaded[0]["a"] == pytest.approx(1.23456789)
    assert loaded[1]["a"] == "inf"
    assert loaded[1]["d"] == 4


def test_csv_header_is_key_union(tmp_path):
    records = [{"a": 1}, {"a": 2, "b": 3}]
    path = records_to_csv(records, tmp_path / "r.csv")
    lines = path.read_text().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,"
    assert lines[2] == "2,3"


def test_csv_empty_records(tmp_path):
    path = records_to_csv([], tmp_path / "empty.csv")
    assert path.read_text() == ""


def test_trace_command_shows_wire_view(capsys):
    assert main(["trace", "--exchanges", "30", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert ": SA " in out             # the SYN/ACK from the service IP
    assert "verified=True" in out
    assert "takeover" in out
    # Every TCP frame the client saw came from the one service identity.
    data_lines = [l for l in out.splitlines() if " win " in l]
    assert data_lines
    assert all("10.0.0.100.8000" in line for line in data_lines)


def test_timeline_command_prints_phase_decomposition(capsys):
    assert main(["timeline", "--exchanges", "30", "--hb", "0.05", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "failover timeline" in out
    assert "phase detection" in out
    assert "phase takeover" in out
    assert "sum of phases" in out
    assert "measured client-visible outage" in out
    # The rendered sum and the measured outage agree to the 0.1 ms digit.
    rendered = [l for l in out.splitlines() if "sum of phases" in l][0]
    measured = [l for l in out.splitlines() if "measured" in l][0]
    assert rendered.split(":")[1].split("ms")[0].strip() in measured


def test_drill_flight_dump_flag(tmp_path, capsys):
    from pathlib import Path

    broken = Path(__file__).parent.parent / "drill" / "broken" / "b01_wrong_ack.py"
    dumps = tmp_path / "dumps"
    assert main(["drill", str(broken), "--flight-dump", str(dumps)]) == 1
    out = capsys.readouterr().out
    assert "field ack: expected 2, actual 1" in out  # diagnostics unchanged
    assert (dumps / "b01_wrong_ack.flight.txt").exists()


def test_flight_dump_env_round_trip(tmp_path, monkeypatch):
    """A red harness run leaves a dump when REPRO_FLIGHT_DUMP is set."""
    from repro.apps.workload import echo_workload
    from repro.errors import SimulationError
    from repro.harness.runner import FLIGHT_DUMP_ENV, run_workload

    monkeypatch.setenv(FLIGHT_DUMP_ENV, str(tmp_path))
    # Deadline far too short: the simulation dies mid-run.
    with pytest.raises(SimulationError):
        run_workload(echo_workload(500), seed=4, deadline=0.15)
    dumps = list(tmp_path.glob("flight-*.txt"))
    assert len(dumps) == 1
    assert "=== flight recorder dump: simulation crashed" in dumps[0].read_text()


def test_no_flight_dump_without_env(tmp_path, monkeypatch):
    from repro.apps.workload import echo_workload
    from repro.errors import SimulationError
    from repro.harness.runner import FLIGHT_DUMP_ENV, run_workload

    monkeypatch.delenv(FLIGHT_DUMP_ENV, raising=False)
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SimulationError):
        run_workload(echo_workload(500), seed=4, deadline=0.15)
    assert list(tmp_path.glob("flight-*.txt")) == []


def test_health_command_publishes_scorecard(tmp_path, capsys):
    out_dir = tmp_path / "health"
    assert (
        main(
            [
                "health",
                "--scenario",
                "smoke",
                "--no-store",
                "--out",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "repro health scorecard" in out
    assert "## smoke — grade" in out
    assert "**Overall: PASS**" in out
    md = (out_dir / "scorecard.md").read_text()
    assert "takeover-within-budget" in md
    doc = json.loads((out_dir / "scorecard.json").read_text())
    assert doc["ok"] is True
    (scenario,) = doc["scenarios"]
    assert scenario["name"] == "smoke"
    assert scenario["grade"] in ("A", "B")
    assert scenario["causal_chain"]  # the takeover's flow travelled along


def test_health_command_stores_content_hashed_scores(tmp_path, capsys):
    store_path = tmp_path / "results.jsonl"
    args = [
        "health",
        "--scenario",
        "smoke",
        "--store",
        str(store_path),
        "--out",
        str(tmp_path / "h"),
    ]
    assert main(args) == 0
    lines = [
        json.loads(line)
        for line in store_path.read_text().splitlines()
        if '"health[' in line
    ]
    assert len(lines) == 1
    assert lines[0]["params"]["scenario"] == "smoke"
    assert lines[0]["record"]["grade"] in ("A", "B")
    capsys.readouterr()
    # A re-run with the same spec dedups on the content hash.
    assert main(args) == 0
    lines = [
        line for line in store_path.read_text().splitlines() if '"health[' in line
    ]
    assert len(lines) == 1


def test_cluster_scorecard_flag(tmp_path, capsys):
    out_dir = tmp_path / "sc"
    assert (
        main(
            [
                "cluster",
                "--scenario",
                "smoke",
                "--no-store",
                "--scorecard",
                str(out_dir),
            ]
        )
        == 0
    )
    assert (out_dir / "scorecard.md").exists()
    doc = json.loads((out_dir / "scorecard.json").read_text())
    assert [s["name"] for s in doc["scenarios"]] == ["smoke"]


def test_timeline_scenario_mode(capsys):
    assert main(["timeline", "--scenario", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "cluster scenario 'smoke'" in out
    assert "failover timeline: client outage" in out  # the crashed pair
    assert "no takeover on this pair" in out  # the healthy pair
    assert "phase fence" in out and "phase resync" in out


def test_timeline_default_mode_unchanged(capsys):
    assert main(["timeline", "--exchanges", "30"]) == 0
    out = capsys.readouterr().out
    assert "phase detection" in out
    assert "cluster scenario" not in out


def test_failed_cluster_drill_attaches_causal_trace(tmp_path, capsys):
    """A failing cluster drill leaves the flight dump plus the causal
    trace (Chrome flow events + chain nodes); single-pair drills don't
    get the trace file."""
    script = tmp_path / "t99_cluster_fails.py"
    script.write_text(
        "use(mode=\"cluster\", cluster={\n"
        "    \"name\": \"t99\", \"primaries\": 2, \"backups\": 2,\n"
        "    \"capacity\": 2,\n"
        "    \"workload\": {\"exchanges\": 80, \"service_time\": 0.005},\n"
        "    \"deadline\": 5.0,\n"
        "})\n"
        "fault(0.250, \"cluster_crash\", service=\"s0\")\n"
        "def impossible(env):\n"
        "    assert False, \"forced failure\"\n"
        "probe(1.500, impossible, label=\"always fails\")\n"
    )
    dumps = tmp_path / "dumps"
    assert main(["drill", str(script), "--flight-dump", str(dumps)]) == 1
    capsys.readouterr()
    assert (dumps / "t99_cluster_fails.flight.txt").exists()
    trace = dumps / "t99_cluster_fails.trace.json"
    assert trace.exists()
    doc = json.loads(trace.read_text())
    arrows = [e for e in doc["traceEvents"] if e.get("ph") in ("s", "t", "f")]
    assert arrows  # the takeover chain rendered as flow events
    (chain,) = doc["causalChains"].values()
    names = [node["name"] for node in chain]
    assert names[0] == "takeover_episode" and "fence" in names

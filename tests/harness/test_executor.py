"""Executor behaviour: parallel determinism, resume, telemetry."""

import json

from repro.harness.executor import run_grid
from repro.harness.experiments import ExperimentScale
from repro.harness.results import ResultStore, cell_key
from repro.harness.spec import get_spec
from repro.util.units import KB

#: Just big enough to exercise every row of Table 1.
TINY = ExperimentScale(
    echo_exchanges=5,
    interactive_exchanges=2,
    bulk_sizes=(32 * KB,),
    repeats=1,
    hb_grid=(0.2, 0.05),
)


def _echo_grid():
    """Table 1 restricted to the Echo column: one cell per protocol row."""
    spec = get_spec("table1")
    cells = [
        cell
        for cell in spec.build_cells(scale=TINY)
        if cell.params["workload"]["name"] == "echo"
    ]
    return spec, cells


def test_parallel_rows_identical_to_serial():
    spec, cells = _echo_grid()
    assert len(cells) == 3  # Standard TCP + ST-TCP at two HB intervals
    serial = run_grid(spec, cells, jobs=1)
    fanned = run_grid(spec, cells, jobs=2)
    assert serial.records == fanned.records
    assert fanned.executed == len(cells)
    assert fanned.jobs == 2


def test_telemetry_collected_per_cell():
    spec, cells = _echo_grid()
    result = run_grid(spec, cells[:1])
    (telemetry,) = result.telemetry
    assert telemetry["events"] > 0
    assert telemetry["sim_seconds"] > 0
    assert telemetry["wall_time"] >= 0
    assert telemetry["simulations"] == 1
    assert result.events == telemetry["events"]


def test_resume_skips_completed_cells(tmp_path):
    spec, cells = _echo_grid()
    store = ResultStore(tmp_path / "results.jsonl")
    first = run_grid(spec, cells, store=store)
    assert first.executed == len(cells) and first.cached == 0

    warm = run_grid(spec, cells, store=ResultStore(store.path))
    assert warm.executed == 0 and warm.cached == len(cells)
    assert warm.records == first.records

    # Drop one row from the store: exactly that cell re-runs, and the
    # recomputed grid is identical to the original.
    victim_key = cell_key(cells[1])
    survivors = [
        line
        for line in store.path.read_text().splitlines()
        if json.loads(line)["key"] != victim_key
    ]
    store.path.write_text("\n".join(survivors) + "\n")
    partial = run_grid(spec, cells, store=ResultStore(store.path))
    assert partial.executed == 1 and partial.cached == len(cells) - 1
    assert partial.records == first.records


def test_store_survives_torn_final_line(tmp_path):
    spec, cells = _echo_grid()
    store = ResultStore(tmp_path / "results.jsonl")
    run_grid(spec, cells, store=store)
    with store.path.open("a") as handle:
        handle.write('{"key": "interrupted-mid-wr')  # killed run
    reloaded = ResultStore(store.path)
    assert len(reloaded) == len(cells)
    resumed = run_grid(spec, cells, store=reloaded)
    assert resumed.executed == 0

"""Shared fixtures and topology builders for the test suite."""

from __future__ import annotations

import pytest

from repro.host.host import Host
from repro.net.addresses import ip
from repro.net.medium import Cable, Hub
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.util.units import mbps, us


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


class LanPair:
    """Two hosts on a fast hub — the workhorse TCP test topology."""

    def __init__(self, sim: Simulator, tcp_config: TCPConfig = None, hub_delay: float = us(50)) -> None:
        self.sim = sim
        self.hub = Hub(sim, rate_bps=mbps(100), delay=hub_delay)
        self.a = Host(sim, "host-a", tcp_config=tcp_config)
        self.b = Host(sim, "host-b", tcp_config=tcp_config)
        self.nic_a = self.a.add_nic()
        self.nic_b = self.b.add_nic()
        self.hub.attach(self.nic_a)
        self.hub.attach(self.nic_b)
        self.ip_a = ip("10.0.0.1")
        self.ip_b = ip("10.0.0.2")
        self.a.configure_ip(self.nic_a, self.ip_a, 24)
        self.b.configure_ip(self.nic_b, self.ip_b, 24)


@pytest.fixture
def lan(sim: Simulator) -> LanPair:
    return LanPair(sim)


def make_lan(sim: Simulator, **kwargs) -> LanPair:
    return LanPair(sim, **kwargs)


class P2PPair:
    """Two hosts on a full-duplex cable."""

    def __init__(self, sim: Simulator, tcp_config: TCPConfig = None, delay: float = us(50)) -> None:
        self.sim = sim
        self.a = Host(sim, "host-a", tcp_config=tcp_config)
        self.b = Host(sim, "host-b", tcp_config=tcp_config)
        self.nic_a = self.a.add_nic()
        self.nic_b = self.b.add_nic()
        self.cable = Cable(sim, self.nic_a, self.nic_b, rate_bps=mbps(100), delay=delay)
        self.ip_a = ip("10.0.0.1")
        self.ip_b = ip("10.0.0.2")
        self.a.configure_ip(self.nic_a, self.ip_a, 24)
        self.b.configure_ip(self.nic_b, self.ip_b, 24)


@pytest.fixture
def p2p(sim: Simulator) -> P2PPair:
    return P2PPair(sim)


def run_echo_once(lan: LanPair, payload: bytes = b"ping", port: int = 7000) -> bytes:
    """Run a one-shot echo over TCP on the pair; returns the echoed bytes."""
    sim = lan.sim
    outcome = {}

    def server():
        listener = lan.b.tcp.listen(port)
        conn = yield listener.accept()
        data = yield conn.recv_exactly(len(payload))
        yield conn.send(data)
        conn.close()

    def client():
        sock = lan.a.tcp.connect((lan.ip_b, port))
        yield sock.wait_connected()
        yield sock.send(payload)
        echoed = yield sock.recv_exactly(len(payload))
        outcome["data"] = echoed.to_bytes()
        sock.close()

    lan.b.spawn(server(), "server")
    process = lan.a.spawn(client(), "client")
    sim.run_until_complete(process, deadline=30.0)
    return outcome["data"]

"""Tests for the host model: addressing, crash semantics, processes."""

import pytest

from repro.errors import ConfigurationError
from repro.host.host import Host, make_gateway
from repro.net.addresses import fresh_multicast_mac, ip
from repro.sim.simulator import Simulator

from tests.conftest import LanPair


@pytest.fixture
def sim():
    return Simulator(seed=55)


def test_local_ips_cover_interfaces_and_vnics(sim):
    host = Host(sim, "h")
    nic = host.add_nic()
    host.configure_ip(nic, ip("10.0.0.1"), 24)
    host.add_vnic("svi", ip("10.0.0.100"), fresh_multicast_mac(), nic)
    assert host.local_ips() == {ip("10.0.0.1"), ip("10.0.0.100")}


def test_local_ip_cache_invalidated_on_changes(sim):
    host = Host(sim, "h")
    nic = host.add_nic()
    host.configure_ip(nic, ip("10.0.0.1"), 24)
    assert ip("10.0.0.100") not in host.local_ips()
    vnic = host.add_vnic("svi", ip("10.0.0.100"), fresh_multicast_mac(), nic)
    assert ip("10.0.0.100") in host.local_ips()
    host.remove_vnic(vnic)
    assert ip("10.0.0.100") not in host.local_ips()


def test_owned_ip_macs_scoped_to_nic(sim):
    host = Host(sim, "h")
    nic_a, nic_b = host.add_nic("a"), host.add_nic("b")
    host.configure_ip(nic_a, ip("10.0.0.1"), 24)
    host.configure_ip(nic_b, ip("192.168.1.1"), 24)
    assert set(host.owned_ip_macs(nic_a)) == {ip("10.0.0.1")}
    assert set(host.owned_ip_macs(nic_b)) == {ip("192.168.1.1")}


def test_source_mac_prefers_vnic(sim):
    host = Host(sim, "h")
    nic = host.add_nic()
    host.configure_ip(nic, ip("10.0.0.1"), 24)
    group = fresh_multicast_mac()
    host.add_vnic("svi", ip("10.0.0.100"), group, nic)
    assert host.source_mac_for(nic, ip("10.0.0.100")) == group
    assert host.source_mac_for(nic, ip("10.0.0.1")) == nic.mac


def test_configure_ip_requires_own_nic(sim):
    host_a, host_b = Host(sim, "a"), Host(sim, "b")
    foreign_nic = host_b.add_nic()
    with pytest.raises(ConfigurationError):
        host_a.configure_ip(foreign_nic, ip("10.0.0.1"), 24)


def test_primary_ip_requires_configuration(sim):
    host = Host(sim, "h")
    nic = host.add_nic()
    with pytest.raises(ConfigurationError):
        host.primary_ip_on(nic)


def test_crash_kills_processes_and_nics(sim):
    host = Host(sim, "h")
    host.add_nic()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(0.1)
            ticks.append(sim.now)

    host.spawn(ticker())
    sim.run(until=0.35)
    host.crash()
    sim.run(until=2.0)
    assert len(ticks) == 3  # nothing after the crash
    assert not host.is_up
    assert host.crashed_at == pytest.approx(0.35)
    assert all(not nic.powered for nic in host.nics)


def test_crash_is_idempotent(sim):
    host = Host(sim, "h")
    host.crash()
    first = host.crashed_at
    host.crash()
    assert host.crashed_at == first


def test_restore_powers_back_up(sim):
    host = Host(sim, "h")
    host.add_nic()
    host.crash()
    host.restore()
    assert host.is_up
    assert all(nic.powered for nic in host.nics)


def test_gateway_has_forwarding_enabled(sim):
    gateway = make_gateway(sim)
    assert gateway.ip_layer.forwarding


def test_crashed_host_ignores_inbound_frames():
    lan = LanPair(Simulator(seed=56))
    lan.b.udp.socket(5000)
    lan.b.crash()
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_b, 5000), b"x")
    lan.sim.run(until=1.0)
    assert lan.b.udp.received == 0

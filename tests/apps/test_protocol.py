"""Tests for the application wire protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.protocol import (
    KIND_DATA,
    KIND_ECHO,
    KIND_UPLOAD,
    REQUEST_SIZE,
    decode_request,
    encode_request,
    response_payload,
    upload_payload,
    verify_response,
    verify_upload,
)


def test_request_roundtrip():
    record = encode_request(KIND_DATA, 10240, 7)
    assert len(record) == REQUEST_SIZE
    request = decode_request(record)
    assert request.kind == KIND_DATA
    assert request.response_size == 10240
    assert request.request_id == 7


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        encode_request(99, 0, 0)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        encode_request(KIND_DATA, -1, 0)


def test_decode_validates_length_and_magic():
    with pytest.raises(ValueError):
        decode_request(encode_request(KIND_ECHO, 0, 0).slice(0, 100))
    from repro.util.bytespan import RealBytes

    with pytest.raises(ValueError):
        decode_request(RealBytes(b"\x00" * REQUEST_SIZE))


def test_response_payload_is_offset_deterministic():
    whole = response_payload(1000, 0)
    tail = response_payload(500, 500)
    assert whole.slice(500, 1000) == tail


def test_verify_response():
    payload = response_payload(256, 1024)
    assert verify_response(payload, 1024)
    assert not verify_response(payload, 1025)


def test_upload_payload_distinct_from_response():
    assert upload_payload(100, 0).to_bytes() != response_payload(100, 0).to_bytes()
    assert verify_upload(upload_payload(64, 10), 10)
    assert not verify_upload(upload_payload(64, 10), 11)


def test_requests_with_same_id_are_identical():
    assert encode_request(KIND_ECHO, 0, 3) == encode_request(KIND_ECHO, 0, 3)


@given(
    st.sampled_from([KIND_ECHO, KIND_DATA, KIND_UPLOAD]),
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**32 - 1),
)
def test_prop_encode_decode_roundtrip(kind, size, request_id):
    request = decode_request(encode_request(kind, size, request_id))
    assert request.kind == kind
    assert request.response_size == size
    assert request.request_id == request_id & 0xFFFFFFFF

"""End-to-end application tests on a standard (non-ST-TCP) server."""


from repro.apps.client import run_client
from repro.apps.server import start_server
from repro.apps.workload import (
    PAPER_BULK_SIZES,
    RunResult,
    bulk_workload,
    echo_workload,
    interactive_workload,
    upload_workload,
)
from repro.sim.simulator import Simulator
from repro.util.units import KB, MB

from tests.conftest import LanPair


def run_app(workload, seed=60, service_time=None):
    lan = LanPair(Simulator(seed=seed))
    start_server(
        lan.b,
        9000,
        service_time=workload.service_time if service_time is None else service_time,
    )
    process = run_client(lan.a, (lan.ip_b, 9000), workload)
    result: RunResult = lan.sim.run_until_complete(process, deadline=600.0)
    return result


def test_echo_application():
    result = run_app(echo_workload(100))
    assert result.error is None
    assert result.verified
    assert result.exchanges_done == 100
    assert result.bytes_received == 100 * 150


def test_interactive_application():
    result = run_app(interactive_workload(50))
    assert result.error is None
    assert result.verified
    assert result.bytes_received == 50 * 10 * KB


def test_bulk_application():
    result = run_app(bulk_workload(1 * MB))
    assert result.error is None
    assert result.verified
    assert result.bytes_received == 1 * MB
    assert result.exchanges_done == 1


def test_upload_application():
    result = run_app(upload_workload(512 * KB))
    assert result.error is None
    assert result.verified
    assert result.bytes_sent == 512 * KB
    assert result.bytes_received == 150  # the receipt


def test_timeline_monotonic_and_complete():
    result = run_app(interactive_workload(20))
    times = [t for t, _ in result.timeline]
    totals = [b for _, b in result.timeline]
    assert times == sorted(times)
    assert totals == sorted(totals)
    assert totals[-1] == result.bytes_received


def test_max_gap_reflects_stalls():
    result = run_app(echo_workload(50))
    assert 0 < result.max_gap < 0.1  # steady exchanges, no stall


def test_workload_total_bytes_helper():
    assert echo_workload(100).total_response_bytes() == 15000
    assert interactive_workload(100).total_response_bytes() == 100 * 10 * KB
    assert bulk_workload(5 * MB).total_response_bytes() == 5 * MB


def test_paper_bulk_sizes():
    assert PAPER_BULK_SIZES == (1 * MB, 5 * MB, 20 * MB, 100 * MB)


def test_service_time_adds_latency():
    fast = run_app(echo_workload(20), seed=61, service_time=0.0)
    slow = run_app(echo_workload(20), seed=61, service_time=0.005)
    assert slow.total_time > fast.total_time + 20 * 0.004


def test_run_result_summary_readable():
    result = run_app(echo_workload(5))
    text = result.summary()
    assert "echo" in text
    assert "ok" in text


def test_two_sequential_clients_one_server():
    lan = LanPair(Simulator(seed=62))
    start_server(lan.b, 9000)

    def both():
        first = yield run_client(lan.a, (lan.ip_b, 9000), echo_workload(5))
        second = yield run_client(lan.a, (lan.ip_b, 9000), echo_workload(5))
        return (first, second)

    process = lan.a.spawn(both())
    first, second = lan.sim.run_until_complete(process, deadline=120.0)
    assert first.verified and second.verified


def test_malformed_request_aborts_connection_not_server():
    """Garbage from a rogue client must not take the service down."""
    from repro.errors import ConnectionReset
    from repro.sim.simulator import Simulator
    from tests.conftest import LanPair

    lan = LanPair(Simulator(seed=63))
    start_server(lan.b, 9000)
    outcome = {}

    def rogue():
        sock = lan.a.tcp.connect((lan.ip_b, 9000))
        yield sock.wait_connected()
        yield sock.send(b"\x00" * 150)  # bad magic
        try:
            yield sock.recv_exactly(10)
        except ConnectionReset:
            outcome["rogue"] = "reset"

    process = lan.a.spawn(rogue())
    lan.sim.run_until_complete(process, deadline=30.0)
    assert outcome["rogue"] == "reset"
    # A well-behaved client is still served afterwards.
    result = lan.sim.run_until_complete(
        run_client(lan.a, (lan.ip_b, 9000), echo_workload(3)), deadline=30.0
    )
    assert result.verified and result.error is None


def test_listener_close_fails_pending_accepts():
    from repro.sim.simulator import Simulator
    from tests.conftest import LanPair

    lan = LanPair(Simulator(seed=64))
    box = []
    lan.b.spawn(
        __import__("repro.apps.server", fromlist=["request_response_server"]).request_response_server(
            lan.b, 9100, listener_box=box
        )
    )
    lan.sim.run(until=0.01)
    box[0].close()
    lan.sim.run(until=0.05)
    # Server process ended cleanly; new connections are refused.
    from repro.errors import ConnectionRefused

    def late():
        sock = lan.a.tcp.connect((lan.ip_b, 9100))
        try:
            yield sock.wait_connected()
        except ConnectionRefused:
            return "refused"

    process = lan.a.spawn(late())
    assert lan.sim.run_until_complete(process, deadline=10.0) == "refused"

"""Tests and property checks for the FIFO span buffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bytespan import PatternBytes, RealBytes
from repro.util.spanbuffer import SpanBuffer


def test_empty_buffer():
    buffer = SpanBuffer()
    assert len(buffer) == 0
    assert buffer.head_offset == 0
    assert buffer.tail_offset == 0
    assert buffer.pop_front(10).to_bytes() == b""


def test_append_and_pop_roundtrip():
    buffer = SpanBuffer()
    buffer.append(b"hello ")
    buffer.append(b"world")
    assert len(buffer) == 11
    assert buffer.pop_front(11).to_bytes() == b"hello world"
    assert buffer.head_offset == 11


def test_pop_crosses_piece_boundaries():
    buffer = SpanBuffer()
    buffer.append(b"abc")
    buffer.append(b"def")
    assert buffer.pop_front(4).to_bytes() == b"abcd"
    assert buffer.pop_front(10).to_bytes() == b"ef"


def test_pop_clamps_to_length():
    buffer = SpanBuffer()
    buffer.append(b"xy")
    assert buffer.pop_front(100).to_bytes() == b"xy"


def test_discard_front():
    buffer = SpanBuffer()
    buffer.append(b"abcdef")
    buffer.discard_front(4)
    assert buffer.head_offset == 4
    assert buffer.pop_front(2).to_bytes() == b"ef"


def test_peek_absolute_window():
    buffer = SpanBuffer()
    buffer.append(b"0123456789")
    buffer.discard_front(3)  # head now at 3
    assert buffer.peek_absolute(4, 8).to_bytes() == b"4567"
    assert buffer.peek_absolute(3, 3).to_bytes() == b""


def test_peek_absolute_out_of_range():
    buffer = SpanBuffer()
    buffer.append(b"abcd")
    buffer.discard_front(2)
    with pytest.raises(IndexError):
        buffer.peek_absolute(0, 3)  # below head
    with pytest.raises(IndexError):
        buffer.peek_absolute(2, 5)  # beyond tail


def test_peek_front():
    buffer = SpanBuffer()
    buffer.append(b"abcdef")
    assert buffer.peek_front(3).to_bytes() == b"abc"
    assert len(buffer) == 6  # peek does not consume


def test_offsets_survive_pattern_spans():
    buffer = SpanBuffer()
    buffer.append(PatternBytes(1000, offset=0, pattern_id=2))
    buffer.discard_front(400)
    view = buffer.peek_absolute(400, 500)
    assert view.to_bytes() == PatternBytes(100, offset=400, pattern_id=2).to_bytes()


def test_clear_advances_head():
    buffer = SpanBuffer()
    buffer.append(b"abcdef")
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.head_offset == 6


def test_empty_append_ignored():
    buffer = SpanBuffer()
    buffer.append(b"")
    assert len(buffer) == 0


def test_peek_absolute_straddles_piece_boundaries():
    buffer = SpanBuffer()
    buffer.append(b"abc")
    buffer.append(b"defg")
    buffer.append(b"hi")
    # One slice spanning all three pieces, offset into the first and last.
    assert buffer.peek_absolute(2, 8).to_bytes() == b"cdefgh"
    buffer.pop_front(4)  # head now at 4, first remaining piece is "efg"
    assert buffer.peek_absolute(5, 8).to_bytes() == b"fgh"
    assert len(buffer) == 5  # peek does not consume


def test_peek_absolute_empty_range_at_tail():
    buffer = SpanBuffer()
    buffer.append(b"abcd")
    buffer.discard_front(1)
    tail = buffer.tail_offset
    assert buffer.peek_absolute(tail, tail).to_bytes() == b""
    assert buffer.peek_absolute(buffer.head_offset, buffer.head_offset).to_bytes() == b""
    with pytest.raises(IndexError):
        buffer.peek_absolute(tail, tail + 1)
    with pytest.raises(IndexError):
        buffer.peek_absolute(tail, tail - 1)  # start > stop


def test_clear_then_reappend_keeps_absolute_addressing():
    buffer = SpanBuffer()
    buffer.append(b"abcdef")
    buffer.pop_front(2)
    buffer.clear()
    assert buffer.head_offset == 6
    buffer.append(b"XY")
    buffer.append(b"Z")
    assert buffer.tail_offset == 9
    assert buffer.peek_absolute(6, 9).to_bytes() == b"XYZ"
    with pytest.raises(IndexError):
        buffer.peek_absolute(5, 7)  # pre-clear offsets are gone
    assert buffer.pop_front(3).to_bytes() == b"XYZ"
    assert buffer.head_offset == 9


def test_pop_front_exactly_at_piece_boundary():
    buffer = SpanBuffer()
    buffer.append(b"abc")
    buffer.append(b"def")
    assert buffer.pop_front(3).to_bytes() == b"abc"
    assert buffer.head_offset == 3
    assert buffer.peek_absolute(3, 6).to_bytes() == b"def"
    assert buffer.pop_front(0).to_bytes() == b""
    assert buffer.head_offset == 3


@given(st.lists(st.binary(min_size=1, max_size=20), max_size=20), st.data())
def test_prop_buffer_behaves_like_bytestring(pieces, data):
    """The buffer must behave exactly like a byte string with a moving
    head: pops return prefixes, offsets track total consumption."""
    buffer = SpanBuffer()
    reference = b""
    consumed = 0
    for piece in pieces:
        buffer.append(RealBytes(piece))
        reference += piece
        if data.draw(st.booleans()):
            count = data.draw(st.integers(0, len(reference) + 2))
            popped = buffer.pop_front(count).to_bytes()
            expected = reference[:count]
            assert popped == expected
            reference = reference[len(expected):]
            consumed += len(expected)
        assert len(buffer) == len(reference)
        assert buffer.head_offset == consumed
        assert buffer.tail_offset == consumed + len(reference)


@given(
    st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=10),
    st.integers(0, 100),
    st.integers(0, 100),
)
def test_prop_peek_absolute_matches_reference(pieces, a, b):
    buffer = SpanBuffer()
    reference = b"".join(pieces)
    for piece in pieces:
        buffer.append(piece)
    lo, hi = sorted((min(a, len(reference)), min(b, len(reference))))
    assert buffer.peek_absolute(lo, hi).to_bytes() == reference[lo:hi]

"""Tests and property checks for the byte-span payload model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bytespan import (
    EMPTY,
    CatBytes,
    PatternBytes,
    RealBytes,
    as_span,
    concat,
    fingerprint,
    span_equal,
)


def test_real_bytes_roundtrip():
    span = RealBytes(b"hello world")
    assert len(span) == 11
    assert span.to_bytes() == b"hello world"


def test_real_bytes_slice():
    span = RealBytes(b"hello world")
    assert span[0:5].to_bytes() == b"hello"
    assert span[6:11].to_bytes() == b"world"


def test_slice_bounds_checked():
    span = RealBytes(b"abc")
    with pytest.raises(IndexError):
        span.slice(0, 4)
    with pytest.raises(IndexError):
        span.slice(2, 1)


def test_pattern_bytes_deterministic():
    a = PatternBytes(100, offset=0, pattern_id=3)
    b = PatternBytes(100, offset=0, pattern_id=3)
    assert a.to_bytes() == b.to_bytes()


def test_pattern_bytes_offset_consistency():
    """Independently produced slices of the same stream agree."""
    whole = PatternBytes(1000, offset=0, pattern_id=1)
    part = PatternBytes(300, offset=200, pattern_id=1)
    assert whole.to_bytes()[200:500] == part.to_bytes()


def test_pattern_ids_differ():
    assert PatternBytes(64, 0, 1).to_bytes() != PatternBytes(64, 0, 2).to_bytes()


def test_pattern_bytes_large_tiling():
    span = PatternBytes(100_000, offset=12345, pattern_id=5)
    data = span.to_bytes()
    assert len(data) == 100_000
    # Spot-check against direct slicing.
    assert data[5000:5100] == span.slice(5000, 5100).to_bytes()


def test_pattern_bytes_negative_length_rejected():
    with pytest.raises(ValueError):
        PatternBytes(-1)


def test_cat_bytes_concatenates():
    combined = concat([RealBytes(b"abc"), RealBytes(b"def")])
    assert combined.to_bytes() == b"abcdef"


def test_cat_bytes_slice_spans_pieces():
    combined = concat([RealBytes(b"abc"), RealBytes(b"defgh"), RealBytes(b"ij")])
    assert combined[2:7].to_bytes() == b"cdefg"


def test_cat_flattens_nested():
    inner = concat([RealBytes(b"ab"), RealBytes(b"cd")])
    outer = CatBytes([inner, RealBytes(b"ef")])
    assert all(not isinstance(part, CatBytes) for part in outer.parts)
    assert outer.to_bytes() == b"abcdef"


def test_cat_coalesces_adjacent_patterns():
    first = PatternBytes(100, offset=0, pattern_id=1)
    second = PatternBytes(50, offset=100, pattern_id=1)
    combined = CatBytes([first, second])
    assert len(combined.parts) == 1
    assert len(combined) == 150


def test_concat_drops_empties():
    combined = concat([EMPTY, RealBytes(b"x"), EMPTY])
    assert combined.to_bytes() == b"x"
    assert concat([]) is EMPTY


def test_as_span_coercion():
    assert as_span(b"abc").to_bytes() == b"abc"
    assert as_span(bytearray(b"abc")).to_bytes() == b"abc"
    span = RealBytes(b"x")
    assert as_span(span) is span
    with pytest.raises(TypeError):
        as_span(123)


def test_equality_across_representations():
    pattern = PatternBytes(20, 5, 2)
    real = RealBytes(pattern.to_bytes())
    assert span_equal(pattern, real)
    assert pattern == real
    assert pattern == pattern.to_bytes()


def test_inequality_by_length_and_content():
    assert not span_equal(RealBytes(b"ab"), RealBytes(b"abc"))
    assert not span_equal(RealBytes(b"ab"), RealBytes(b"ba"))


def test_iter_chunks_bounded():
    span = PatternBytes(200_000, 0, 1)
    chunks = list(span.iter_chunks(65536))
    assert [len(c) for c in chunks] == [65536, 65536, 65536, 3392]
    assert b"".join(chunks) == span.to_bytes()


def test_fingerprint_distinguishes_content():
    assert fingerprint(RealBytes(b"abc")) != fingerprint(RealBytes(b"abd"))
    assert fingerprint(RealBytes(b"abc")) == fingerprint(as_span(b"abc"))


# ------------------------------------------------------------------ properties
@given(st.binary(max_size=200), st.integers(0, 200), st.integers(0, 200))
def test_prop_real_slice_matches_python_slice(data, a, b):
    lo, hi = sorted((min(a, len(data)), min(b, len(data))))
    assert RealBytes(data).slice(lo, hi).to_bytes() == data[lo:hi]


@given(
    st.integers(0, 500),
    st.integers(0, 10_000),
    st.integers(0, 5),
    st.integers(0, 500),
    st.integers(0, 500),
)
def test_prop_pattern_slice_is_offset_stable(length, offset, pattern_id, a, b):
    lo, hi = sorted((min(a, length), min(b, length)))
    span = PatternBytes(length, offset, pattern_id)
    assert span.slice(lo, hi).to_bytes() == span.to_bytes()[lo:hi]


@given(st.lists(st.binary(max_size=50), max_size=8), st.integers(0, 400), st.integers(0, 400))
def test_prop_cat_slice_matches_joined_bytes(pieces, a, b):
    joined = b"".join(pieces)
    lo, hi = sorted((min(a, len(joined)), min(b, len(joined))))
    combined = concat([RealBytes(piece) for piece in pieces])
    assert combined.to_bytes() == joined
    assert combined.slice(lo, hi).to_bytes() == joined[lo:hi]


@settings(max_examples=30)
@given(st.integers(1, 3_000), st.integers(0, 1 << 40), st.integers(0, 3))
def test_prop_pattern_to_bytes_agrees_with_per_byte_definition(length, offset, pid):
    span = PatternBytes(length, offset, pid)
    data = span.to_bytes()
    # Check a few positions against the independent per-byte definition.
    from repro.util.bytespan import _TABLE_PERIOD, _pattern_table

    table = _pattern_table(pid)
    for position in {0, length // 2, length - 1}:
        assert data[position] == table[(offset + position) % _TABLE_PERIOD]

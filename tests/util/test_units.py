"""Tests for unit helpers."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_time,
    gbps,
    kbps,
    mbps,
    ms,
    transmission_time,
    us,
)


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_rate_conversions():
    assert kbps(1) == 1_000
    assert mbps(100) == 100_000_000
    assert gbps(1) == 1_000_000_000


def test_time_conversions():
    assert ms(250) == 0.25
    assert us(50) == pytest.approx(50e-6)


def test_transmission_time():
    # 1500 bytes at 100 Mb/s = 120 microseconds.
    assert transmission_time(1500, mbps(100)) == pytest.approx(120e-6)


def test_transmission_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        transmission_time(100, 0)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2 * KB) == "2 KB"
    assert fmt_bytes(5 * MB) == "5 MB"
    assert fmt_bytes(3 * GB) == "3 GB"


def test_fmt_time():
    assert fmt_time(2.5) == "2.5 s"
    assert fmt_time(0.150) == "150 ms"
    assert fmt_time(42e-6) == "42 us"

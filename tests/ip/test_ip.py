"""Tests for routing, the IP layer, forwarding, and taps."""

import pytest

from repro.host.host import Host, make_gateway
from repro.ip.datagram import IPDatagram, PROTO_UDP
from repro.ip.routing import Route, RoutingTable
from repro.net.addresses import ip
from repro.net.medium import Cable
from repro.sim.simulator import Simulator
from repro.util.units import mbps

from tests.conftest import LanPair


class FakeNIC:
    def __init__(self, name):
        self.name = name


def test_longest_prefix_match():
    table = RoutingTable()
    eth0, eth1 = FakeNIC("eth0"), FakeNIC("eth1")
    table.add(Route(ip("10.0.0.0"), 8, eth0))
    table.add(Route(ip("10.1.0.0"), 16, eth1))
    assert table.lookup(ip("10.1.2.3")).nic is eth1
    assert table.lookup(ip("10.2.0.1")).nic is eth0
    assert table.lookup(ip("192.168.0.1")) is None


def test_default_route_is_last_resort():
    table = RoutingTable()
    lan, wan = FakeNIC("lan"), FakeNIC("wan")
    table.add(Route(ip("0.0.0.0"), 0, wan, next_hop=ip("192.168.1.1"), metric=100))
    table.add(Route(ip("10.0.0.0"), 24, lan))
    assert table.lookup(ip("10.0.0.5")).nic is lan
    assert table.lookup(ip("8.8.8.8")).nic is wan


def test_remove_network():
    table = RoutingTable()
    nic = FakeNIC("eth0")
    table.add(Route(ip("10.0.0.0"), 24, nic))
    table.remove_network(ip("10.0.0.0"), 24)
    assert table.lookup(ip("10.0.0.1")) is None


def test_route_prefix_validation():
    with pytest.raises(Exception):
        Route(ip("10.0.0.0"), 40, FakeNIC("x"))


def test_udp_delivery_between_hosts():
    lan = LanPair(Simulator(seed=9))
    received = []
    sock_b = lan.b.udp.socket(5000)
    sock_b.on_datagram = lambda payload, addr: received.append((payload, addr))
    sock_a = lan.a.udp.socket(6000)
    sock_a.send_to((lan.ip_b, 5000), b"datagram")
    lan.sim.run(until=1.0)
    assert len(received) == 1
    payload, (src_ip, src_port) = received[0]
    assert payload.to_bytes() == b"datagram"
    assert src_ip == lan.ip_a
    assert src_port == 6000


def test_loopback_delivery():
    lan = LanPair(Simulator(seed=9))
    received = []
    sock = lan.a.udp.socket(5000)
    sock.on_datagram = lambda payload, addr: received.append(payload)
    sender = lan.a.udp.socket(6000)
    sender.send_to((lan.ip_a, 5000), b"self")
    lan.sim.run(until=0.1)
    assert len(received) == 1
    assert lan.nic_a.tx_frames == 0  # never touched the wire


def test_tap_sees_all_datagrams_including_foreign():
    lan = LanPair(Simulator(seed=9))
    lan.nic_b.promiscuous = True
    tapped = []
    lan.b.ip_layer.add_tap(lambda datagram, nic: tapped.append(datagram))
    # a sends to a third (absent) host; b taps it promiscuously.
    lan.a.arp.add_static(ip("10.0.0.77"), lan.nic_b.mac)  # deliverable frame
    sock = lan.a.udp.socket(6000)
    sock.send_to((ip("10.0.0.77"), 1234), b"x")
    lan.sim.run(until=1.0)
    assert len(tapped) == 1
    assert tapped[0].dst == ip("10.0.0.77")
    assert lan.b.ip_layer.dropped_not_local == 1


def test_remove_tap():
    lan = LanPair(Simulator(seed=9))
    tapped = []
    handler = lambda datagram, nic: tapped.append(datagram)
    lan.b.ip_layer.add_tap(handler)
    lan.b.ip_layer.remove_tap(handler)
    sock = lan.a.udp.socket(6000)
    lan.b.udp.socket(5000)
    sock.send_to((lan.ip_b, 5000), b"x")
    lan.sim.run(until=1.0)
    assert tapped == []


def test_no_route_counted():
    lan = LanPair(Simulator(seed=9))
    sock = lan.a.udp.socket(6000)
    sock.send_to((ip("192.168.5.1"), 80), b"x")
    lan.sim.run(until=0.5)
    assert lan.a.ip_layer.dropped_no_route == 1


def test_gateway_forwards_between_subnets():
    sim = Simulator(seed=11)
    gateway = make_gateway(sim)
    left = Host(sim, "left")
    right = Host(sim, "right")
    gw_l, gw_r = gateway.add_nic("l"), gateway.add_nic("r")
    nic_l, nic_r = left.add_nic(), right.add_nic()
    Cable(sim, nic_l, gw_l, rate_bps=mbps(100))
    Cable(sim, nic_r, gw_r, rate_bps=mbps(100))
    left.configure_ip(nic_l, ip("192.168.1.2"), 24)
    right.configure_ip(nic_r, ip("10.0.0.2"), 24)
    gateway.configure_ip(gw_l, ip("192.168.1.1"), 24)
    gateway.configure_ip(gw_r, ip("10.0.0.1"), 24)
    left.ip_layer.add_default_route(nic_l, ip("192.168.1.1"))
    right.ip_layer.add_default_route(nic_r, ip("10.0.0.1"))

    received = []
    sock = right.udp.socket(7000)
    sock.on_datagram = lambda payload, addr: received.append((payload, addr))
    sender = left.udp.socket(7001)
    sender.send_to((ip("10.0.0.2"), 7000), b"across")
    sim.run(until=2.0)
    assert len(received) == 1
    assert received[0][0].to_bytes() == b"across"
    assert gateway.ip_layer.forwarded == 1


def test_ttl_expiry_drops():
    sim = Simulator(seed=12)
    gateway = make_gateway(sim)
    left = Host(sim, "left")
    gw_l = gateway.add_nic("l")
    nic_l = left.add_nic()
    Cable(sim, nic_l, gw_l, rate_bps=mbps(100))
    left.configure_ip(nic_l, ip("192.168.1.2"), 24)
    gateway.configure_ip(gw_l, ip("192.168.1.1"), 24)
    gateway.ip_layer.add_route(ip("10.0.0.0"), 24, gw_l, next_hop=ip("192.168.1.2"))
    # Hand-craft a datagram with ttl=1 arriving at the gateway.
    from repro.udp.datagram import UDPDatagram

    inner = UDPDatagram(1, 2, b"", 0)
    datagram = IPDatagram(ip("192.168.1.2"), ip("10.0.0.9"), PROTO_UDP, inner, inner.size, ttl=1)
    gateway.ip_layer.receive(datagram, gw_l)
    sim.run(until=0.5)
    assert gateway.ip_layer.dropped_ttl == 1


def test_crashed_host_sends_nothing():
    lan = LanPair(Simulator(seed=13))
    lan.b.udp.socket(5000)
    sock = lan.a.udp.socket(6000)
    lan.a.crash()
    sock.send_to((lan.ip_b, 5000), b"x")
    lan.sim.run(until=0.5)
    assert lan.nic_a.tx_frames == 0

"""Tests for the packet logger node and its client (§3.2)."""


from repro.apps.workload import upload_workload
from repro.faults.injection import add_tap_outage
from repro.harness.runner import run_workload
from repro.logger.packet_logger import _StreamLog
from repro.util.bytespan import RealBytes
from repro.util.units import KB

from tests.sttcp.conftest import make_scenario


# --------------------------------------------------------------- stream log
def test_stream_log_records_and_collects():
    log = _StreamLog(isn_abs=1000)
    log.record(1.0, 1001, RealBytes(b"abcde"))
    log.record(1.1, 1006, RealBytes(b"fghij"))
    pieces = log.collect(1001, 1011)
    assert [(seq, span.to_bytes()) for seq, span in pieces] == [
        (1001, b"abcde"),
        (1006, b"fghij"),
    ]


def test_stream_log_collect_clips_to_range():
    log = _StreamLog(isn_abs=0)
    log.record(1.0, 1, RealBytes(b"abcdefghij"))
    pieces = log.collect(4, 8)
    assert [(seq, span.to_bytes()) for seq, span in pieces] == [(4, b"defg")]


def test_stream_log_prunes_by_time():
    log = _StreamLog(isn_abs=0)
    log.record(1.0, 1, RealBytes(b"old"))
    log.record(10.0, 4, RealBytes(b"new"))
    log.prune(horizon=5.0)
    assert log.collect(1, 10) == [(4, RealBytes(b"new").slice(0, 3))] or [
        (seq, span.to_bytes()) for seq, span in log.collect(1, 10)
    ] == [(4, b"new")]


def test_stream_log_handles_wraparound_sequences():
    isn = (1 << 32) - 100
    log = _StreamLog(isn_abs=isn)
    log.record(1.0, (isn + 1) & 0xFFFFFFFF, RealBytes(b"a" * 99))
    log.record(1.1, 0, RealBytes(b"b" * 50))  # wrapped past 2^32
    pieces = log.collect(isn + 1, isn + 150)
    assert sum(len(span) for _seq, span in pieces) == 149


# -------------------------------------------------------------- end to end
def test_logger_records_client_stream_of_live_run():
    scenario = make_scenario(seed=95, with_logger=True)
    run = run_workload(upload_workload(64 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None
    logger = scenario.logger
    # All upload payload plus the request record crossed the logger's tap.
    assert logger.total_bytes_logged >= 64 * KB


def test_double_failure_masked_by_logger():
    """Tap outage + primary crash inside it: only the logger can repair
    the missing client bytes (§3.2)."""
    scenario = make_scenario(seed=96, with_logger=True, hb_interval=0.05)
    # The 256 KB upload spans roughly t=0.1..0.124 on this profile: black
    # out the tap mid-upload and crash the primary inside the outage.
    add_tap_outage(scenario.backup.nics[0], 0.105, 0.115)
    run = run_workload(
        upload_workload(256 * KB), scenario=scenario, crash_at=0.114, deadline=600.0
    )
    assert run.result.error is None
    assert run.result.verified
    backup = scenario.pair.backup_engine
    assert backup.logger_bytes_recovered > 0
    assert backup.degraded_connections == []
    assert scenario.logger.queries_served >= 1


def test_double_failure_without_logger_degrades():
    """The same double failure without a logger loses the connection —
    the case the paper says the logger exists to mask."""
    from repro.errors import SimulationError

    scenario = make_scenario(seed=96, with_logger=False, hb_interval=0.05)
    add_tap_outage(scenario.backup.nics[0], 0.105, 0.115)
    try:
        run = run_workload(
            upload_workload(256 * KB), scenario=scenario, crash_at=0.114, deadline=1500.0
        )
        completed = run.result.error is None
    except SimulationError:
        completed = False
    assert not completed


def test_logger_client_times_out_on_dead_logger():
    scenario = make_scenario(seed=97, with_logger=True, hb_interval=0.05)
    scenario.logger_host.crash()
    run = run_workload(
        upload_workload(64 * KB), scenario=scenario, crash_at=0.105, deadline=600.0
    )
    assert run.result.error is None
    # Takeover must not deadlock on the dead logger; it proceeds after
    # the recovery timeout.
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert scenario.pair.failed_over
    assert scenario.pair.backup_engine.logger_client.recoveries_timed_out >= 0


def test_logger_bounded_memory():
    scenario = make_scenario(seed=98, with_logger=True)
    scenario.logger.retain_seconds = 0.005  # tiny horizon
    run = run_workload(upload_workload(256 * KB), scenario=scenario, deadline=120.0)
    assert run.result.error is None
    # Far less than the full stream is retained under a small horizon.
    assert scenario.logger.retained_bytes < 256 * KB // 2


def test_redundant_loggers_survive_one_logger_crash():
    """§3.2: two loggers remove the logger as a single point of failure.
    A second logger host joins the hub; the first logger dies before the
    double failure, and recovery still succeeds from the survivor."""
    from repro.harness.scenario import SERVICE_IP, SERVICE_PORT
    from repro.host.host import Host
    from repro.logger.client import LoggerClient
    from repro.logger.packet_logger import PacketLogger
    from repro.net.addresses import ip

    scenario = make_scenario(seed=99, with_logger=True, hb_interval=0.05)
    # Second logger on the hub.
    second_host = Host(scenario.sim, "logger2", tcp_config=scenario.profile.tcp_config())
    nic = second_host.add_nic()
    nic.promiscuous = True
    scenario.hub.attach(nic)
    second_host.configure_ip(nic, ip("10.0.0.6"), 24)
    second_logger = PacketLogger(second_host, SERVICE_IP, SERVICE_PORT)
    # Re-point the backup's client at both loggers.
    backup = scenario.pair.backup_engine
    backup.logger_client = LoggerClient(
        scenario.backup, [scenario.logger.address, second_logger.address]
    )
    # Kill the first logger before the faults begin.
    scenario.logger_host.crash()
    add_tap_outage(scenario.backup.nics[0], 0.105, 0.115)
    run = run_workload(
        upload_workload(256 * KB), scenario=scenario, crash_at=0.114, deadline=600.0
    )
    assert run.result.error is None
    assert run.result.verified
    assert backup.logger_bytes_recovered > 0
    assert second_logger.queries_served >= 1

"""Tests for SimEvent and the AnyOf/AllOf combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def test_event_starts_untriggered(sim):
    event = sim.event("e")
    assert not event.triggered
    with pytest.raises(SimulationError):
        _ = event.value


def test_succeed_delivers_value(sim):
    event = sim.event()
    event.succeed(42)
    assert event.triggered
    assert event.ok
    assert event.value == 42


def test_fail_raises_on_value_access(sim):
    event = sim.event()
    event.fail(ValueError("boom"))
    assert event.triggered
    assert not event.ok
    with pytest.raises(ValueError):
        _ = event.value


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("x"))


def test_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_callbacks_fire_on_trigger(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed("hello")
    assert seen == ["hello"]


def test_callback_on_already_triggered_event_fires_immediately(sim):
    event = sim.event()
    event.succeed(7)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_discard_callback(sim):
    event = sim.event()
    seen = []
    callback = lambda e: seen.append(1)
    event.add_callback(callback)
    event.discard_callback(callback)
    event.succeed()
    assert seen == []


def test_timeout_succeeds_after_delay(sim):
    timeout = sim.timeout(5.0, value="done")
    sim.run()
    assert timeout.triggered
    assert timeout.value == "done"
    assert sim.now == 5.0


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_any_of_first_wins(sim):
    fast = sim.timeout(1.0, "fast")
    slow = sim.timeout(2.0, "slow")
    combined = sim.any_of([slow, fast])
    sim.run()
    index, winner = combined.value
    assert winner is fast
    assert index == 1


def test_any_of_failure_propagates(sim):
    failing = sim.event()
    other = sim.timeout(10.0)
    combined = sim.any_of([failing, other])
    failing.fail(RuntimeError("bad"))
    assert combined.triggered
    with pytest.raises(RuntimeError):
        _ = combined.value


def test_any_of_requires_events(sim):
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_any_of_reports_index_of_middle_event(sim):
    events = [sim.event(), sim.event(), sim.event()]
    combined = sim.any_of(events)
    events[1].succeed("mid")
    assert combined.value == (1, events[1])


def test_any_of_unsubscribes_losers(sim):
    events = [sim.event(), sim.event(), sim.event()]
    combined = sim.any_of(events)
    events[2].succeed("winner")
    # The losers' callbacks were discarded, so triggering them later
    # neither re-triggers the combinator nor raises.
    assert all(event._callbacks == [] for event in events)
    events[0].succeed("late")
    assert combined.value == (2, events[2])


def test_any_of_duplicate_event_wins_lowest_index(sim):
    shared = sim.event()
    combined = sim.any_of([shared, shared])
    shared.succeed("once")
    index, winner = combined.value
    assert winner is shared
    assert index == 0


def test_all_of_collects_values_in_order(sim):
    first = sim.timeout(2.0, "a")
    second = sim.timeout(1.0, "b")
    combined = sim.all_of([first, second])
    sim.run()
    assert combined.value == ["a", "b"]


def test_all_of_empty_succeeds_immediately(sim):
    combined = sim.all_of([])
    assert combined.triggered
    assert combined.value == []


def test_all_of_fails_fast(sim):
    bad = sim.event()
    never = sim.event()
    combined = sim.all_of([bad, never])
    bad.fail(KeyError("k"))
    assert combined.triggered
    assert not combined.ok

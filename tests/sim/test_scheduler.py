"""Tests for the event heap scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_LOW, PRIORITY_URGENT
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    scheduler = Scheduler()
    assert scheduler.now == 0.0
    assert scheduler.pending_count == 0


def test_runs_events_in_time_order():
    scheduler = Scheduler()
    order = []
    scheduler.schedule_at(2.0, order.append, (2,))
    scheduler.schedule_at(1.0, order.append, (1,))
    scheduler.schedule_at(3.0, order.append, (3,))
    scheduler.run_until()
    assert order == [1, 2, 3]
    assert scheduler.now == 3.0


def test_same_time_events_run_in_insertion_order():
    scheduler = Scheduler()
    order = []
    for value in range(5):
        scheduler.schedule_at(1.0, order.append, (value,))
    scheduler.run_until()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_time_ties():
    scheduler = Scheduler()
    order = []
    scheduler.schedule_at(1.0, order.append, ("low",), priority=PRIORITY_LOW)
    scheduler.schedule_at(1.0, order.append, ("urgent",), priority=PRIORITY_URGENT)
    scheduler.run_until()
    assert order == ["urgent", "low"]


def test_cannot_schedule_in_the_past():
    scheduler = Scheduler()
    scheduler.schedule_at(5.0, lambda: None)
    scheduler.run_until()
    with pytest.raises(SimulationError):
        scheduler.schedule_at(1.0, lambda: None)


def test_cancelled_events_do_not_run():
    scheduler = Scheduler()
    ran = []
    handle = scheduler.schedule_at(1.0, ran.append, (1,))
    handle.cancel()
    scheduler.run_until()
    assert ran == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    scheduler = Scheduler()
    handle = scheduler.schedule_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_run_until_time_bound_advances_clock_exactly():
    scheduler = Scheduler()
    ran = []
    scheduler.schedule_at(1.0, ran.append, (1,))
    scheduler.schedule_at(10.0, ran.append, (10,))
    scheduler.run_until(until=5.0)
    assert ran == [1]
    assert scheduler.now == 5.0
    scheduler.run_until(until=10.0)
    assert ran == [1, 10]


def test_run_until_max_events():
    scheduler = Scheduler()
    ran = []
    for value in range(10):
        scheduler.schedule_at(float(value), ran.append, (value,))
    scheduler.run_until(max_events=3)
    assert ran == [0, 1, 2]


def test_events_scheduled_during_execution_run():
    scheduler = Scheduler()
    order = []

    def outer():
        order.append("outer")
        scheduler.schedule_at(scheduler.now + 1.0, lambda: order.append("inner"))

    scheduler.schedule_at(1.0, outer)
    scheduler.run_until()
    assert order == ["outer", "inner"]
    assert scheduler.now == 2.0


def test_peek_time_skips_cancelled():
    scheduler = Scheduler()
    first = scheduler.schedule_at(1.0, lambda: None)
    scheduler.schedule_at(2.0, lambda: None)
    first.cancel()
    assert scheduler.peek_time() == 2.0


def test_heap_compaction_with_many_cancellations():
    scheduler = Scheduler()
    handles = [scheduler.schedule_at(1.0 + i, lambda: None) for i in range(10000)]
    for handle in handles[:9000]:
        handle.cancel()
    survivor_ran = []
    scheduler.schedule_at(0.5, survivor_ran.append, (True,))
    scheduler.run_until(until=0.6)
    assert survivor_ran == [True]
    assert scheduler.pending_count == 1000


def test_executed_count():
    scheduler = Scheduler()
    for i in range(5):
        scheduler.schedule_at(float(i), lambda: None)
    scheduler.run_until()
    assert scheduler.executed_count == 5


def test_run_next_before_respects_bound():
    scheduler = Scheduler()
    ran = []
    scheduler.schedule_at(1.0, ran.append, (1,))
    scheduler.schedule_at(3.0, ran.append, (3,))
    assert scheduler.run_next_before(2.0)
    assert ran == [1]
    assert scheduler.now == 1.0
    # Next live event is past the bound: nothing runs, clock holds.
    assert not scheduler.run_next_before(2.0)
    assert ran == [1]
    assert scheduler.now == 1.0
    # Unbounded call executes it.
    assert scheduler.run_next_before(None)
    assert ran == [1, 3]


def test_run_next_before_skips_cancelled_prefix():
    scheduler = Scheduler()
    ran = []
    doomed = [scheduler.schedule_at(1.0 + i, ran.append, (i,)) for i in range(5)]
    scheduler.schedule_at(9.0, ran.append, ("live",))
    for handle in doomed:
        handle.cancel()
    assert not scheduler.run_next_before(8.0)
    assert scheduler.run_next_before(10.0)
    assert ran == ["live"]
    assert not scheduler.run_next_before(10.0)  # queue now empty


def test_heap_compacts_on_dead_fraction():
    # Force the heap backend so compaction (a heap-only concern) is hit.
    scheduler = Scheduler(wheel=False)
    base = Scheduler.GC_BASE_THRESHOLD
    total = base + 2
    handles = [scheduler.schedule_at(1.0 + i, lambda: None) for i in range(total)]
    assert len(scheduler._heap) == total
    # Cancelling just under half leaves the heap uncompacted (dead
    # fraction below one half)...
    for handle in handles[: total // 2 - 1]:
        handle.cancel()
    assert len(scheduler._heap) == total
    # ...one more cancellation tips the fraction and triggers the rebuild.
    handles[total // 2].cancel()
    assert len(scheduler._heap) == scheduler.pending_count == total // 2
    scheduler.run_until()
    assert scheduler.executed_count == total // 2


def test_pending_count_is_live_entries_only():
    scheduler = Scheduler()
    # Mix near-band (wheel) and far (heap) events, then cancel across both.
    near = [scheduler.schedule_at(0.001 * i, lambda: None) for i in range(10)]
    far = [scheduler.schedule_at(10_000.0 + i, lambda: None) for i in range(10)]
    assert scheduler.pending_count == 20
    near[0].cancel()
    far[0].cancel()
    far[0].cancel()  # idempotent: no double decrement
    assert scheduler.pending_count == 18
    scheduler.run_until(until=1.0)
    assert scheduler.pending_count == 9

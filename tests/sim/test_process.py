"""Tests for coroutine processes, semaphores and channels."""

import pytest

from repro.errors import InterruptError, ProcessError
from repro.sim.process import Channel, Semaphore
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


def test_process_runs_and_returns_value(sim):
    def worker():
        yield sim.timeout(1.0)
        return "result"

    process = sim.spawn(worker())
    sim.run()
    assert process.triggered
    assert process.value == "result"
    assert sim.now == 1.0


def test_process_receives_event_values(sim):
    def worker():
        value = yield sim.timeout(1.0, value=99)
        return value

    process = sim.spawn(worker())
    sim.run()
    assert process.value == 99


def test_processes_can_join_each_other(sim):
    def child():
        yield sim.timeout(2.0)
        return "child-done"

    def parent():
        result = yield sim.spawn(child())
        return f"saw {result}"

    process = sim.spawn(parent())
    sim.run()
    assert process.value == "saw child-done"


def test_failed_event_raises_inside_process(sim):
    event = sim.event()

    def worker():
        try:
            yield event
        except RuntimeError as exc:
            return f"caught {exc}"

    process = sim.spawn(worker())
    sim.schedule(1.0, event.fail, RuntimeError("injected"))
    sim.run()
    assert process.value == "caught injected"


def test_uncaught_exception_fails_joiners(sim):
    def bad():
        yield sim.timeout(1.0)
        raise ValueError("oops")

    def parent():
        try:
            yield sim.spawn(bad())
        except ValueError:
            return "propagated"

    process = sim.spawn(parent())
    sim.run()
    assert process.value == "propagated"


def test_uncaught_exception_without_joiner_surfaces(sim):
    def bad():
        yield sim.timeout(1.0)
        raise ValueError("unobserved")

    sim.spawn(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_yielding_non_event_is_an_error(sim):
    def wrong():
        yield 42

    sim.spawn(wrong())
    with pytest.raises(ProcessError):
        sim.run()


def test_interrupt_raises_at_yield_point(sim):
    def sleeper():
        try:
            yield sim.timeout(100.0)
        except InterruptError as exc:
            return (f"interrupted: {exc.cause}", sim.now)

    process = sim.spawn(sleeper())
    sim.schedule(1.0, process.interrupt, "wakeup")
    sim.run()
    message, interrupted_at = process.value
    assert message == "interrupted: wakeup"
    assert interrupted_at == 1.0  # not at the timeout's 100 s


def test_interrupt_after_completion_is_noop(sim):
    def quick():
        yield sim.timeout(1.0)
        return 1

    process = sim.spawn(quick())
    sim.run()
    process.interrupt()  # must not raise
    assert process.value == 1


def test_kill_terminates_without_result(sim):
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
        finally:
            log.append("cleanup")

    process = sim.spawn(worker())
    sim.run(until=1.0)
    process.kill()
    assert process.triggered
    assert log == ["cleanup"]


def test_spawn_requires_generator(sim):
    with pytest.raises(ProcessError):
        sim.spawn(lambda: None)


def test_yield_already_triggered_event_does_not_recurse(sim):
    """A long chain of immediately-ready events must not blow the stack."""
    def worker():
        for _ in range(5000):
            event = sim.event()
            event.succeed(1)
            yield event
        return "ok"

    process = sim.spawn(worker())
    sim.run()
    assert process.value == "ok"


def test_semaphore_serializes(sim):
    sem = Semaphore(sim, value=1)
    order = []

    def worker(name, hold):
        yield sem.acquire()
        order.append(f"{name}-in")
        yield sim.timeout(hold)
        order.append(f"{name}-out")
        sem.release()

    sim.spawn(worker("a", 2.0))
    sim.spawn(worker("b", 1.0))
    sim.run()
    assert order == ["a-in", "a-out", "b-in", "b-out"]


def test_semaphore_counts(sim):
    sem = Semaphore(sim, value=2)
    acquired = []

    def worker(name):
        yield sem.acquire()
        acquired.append(name)

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.spawn(worker("c"))
    sim.run()
    assert acquired == ["a", "b"]  # third waits forever
    assert sem.value == 0


def test_semaphore_rejects_negative(sim):
    with pytest.raises(ProcessError):
        Semaphore(sim, value=-1)


def test_channel_fifo(sim):
    channel = Channel(sim)
    received = []

    def consumer():
        for _ in range(3):
            item = yield channel.get()
            received.append(item)

    sim.spawn(consumer())
    for value in (1, 2, 3):
        channel.put(value)
    sim.run()
    assert received == [1, 2, 3]


def test_channel_get_blocks_until_put(sim):
    channel = Channel(sim)
    result = {}

    def consumer():
        result["item"] = yield channel.get()
        result["time"] = sim.now

    sim.spawn(consumer())
    sim.schedule(5.0, channel.put, "late")
    sim.run()
    assert result == {"item": "late", "time": 5.0}

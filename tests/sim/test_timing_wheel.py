"""Timing-wheel backend tests: ordering, cascades, recycling, and the
randomized heap-vs-wheel differential (the determinism contract)."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_URGENT
from repro.sim.scheduler import BACKEND_ENV, Scheduler, TimingWheel

#: Default-resolution horizon in seconds (2**22 ticks at 100 µs).
HORIZON_S = TimingWheel.HORIZON_TICKS * Scheduler.WHEEL_RESOLUTION


def make_recorder(sched):
    fired = []

    def fire(tag):
        fired.append((sched.now, tag))

    return fired, fire


def test_wheel_rejects_bad_resolution():
    with pytest.raises(SimulationError):
        TimingWheel(0.0)


def test_wheel_orders_same_slot_by_priority_then_seq():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    # All three land in the same 100 µs slot but must still dispatch in
    # (time, priority, seq) order, exactly like the heap.
    sched.schedule_at(1e-5, fire, ("low",), PRIORITY_LOW)
    sched.schedule_at(1e-5, fire, ("urgent",), PRIORITY_URGENT)
    sched.schedule_at(1e-5, fire, ("normal-1",), PRIORITY_NORMAL)
    sched.schedule_at(1e-5, fire, ("normal-2",), PRIORITY_NORMAL)
    sched.run_until()
    assert [tag for _, tag in fired] == ["urgent", "normal-1", "normal-2", "low"]


def test_events_across_all_levels_and_heap_band_fire_in_time_order():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    times = [
        0.00005,  # level 0
        0.9,  # level 1
        30.0,  # level 2 (cascades twice)
        HORIZON_S + 50.0,  # beyond the horizon: heap
        0.00007,  # level 0 again
        200.0,  # level 2
    ]
    for index, time in enumerate(times):
        sched.schedule_at(time, fire, (index,))
    sched.run_until()
    assert [when for when, _ in fired] == sorted(times)
    assert sched.pending_count == 0
    assert sched.executed_count == len(times)


def test_late_insert_behind_advanced_cursor_still_fires_first():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    sched.schedule_at(5.0, fire, ("far",))
    # peek advances the wheel cursor all the way to the 5.0 s slot...
    assert sched.peek_time() == 5.0
    # ...yet an insert behind the cursor (legal: 0.001 >= now == 0) must
    # still dispatch first, via the sorted ready-list tail.
    sched.schedule_at(0.001, fire, ("near",))
    sched.schedule_at(0.002, fire, ("mid",))
    sched.run_until()
    assert [tag for _, tag in fired] == ["near", "mid", "far"]


def test_cursor_resyncs_after_heap_only_stretch():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    far = HORIZON_S + 100.0
    sched.schedule_at(far, fire, ("heap",))
    sched.run_until()
    assert fired == [(far, "heap")]
    # The wheel was empty the whole time; a short timer scheduled now must
    # land near the resynced cursor and fire at the right instant.
    sched.schedule_at(far + 0.0003, fire, ("wheel",))
    sched.run_until()
    assert fired[-1] == (far + 0.0003, "wheel")


def test_cancelled_entries_never_fire_and_counters_stay_live():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    near = sched.schedule_at(0.001, fire, ("near",))
    mid = sched.schedule_at(1.0, fire, ("mid",))
    far = sched.schedule_at(HORIZON_S + 10.0, fire, ("far",))
    assert sched.pending_count == 3
    near.cancel()
    far.cancel()
    far.cancel()  # idempotent
    assert sched.pending_count == 1
    sched.run_until()
    assert [tag for _, tag in fired] == ["mid"]
    assert mid.time == 1.0
    assert sched.pending_count == 0


def test_cancel_from_callback_suppresses_same_slot_sibling():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    handles = {}

    def fire_and_cancel(tag, victim):
        fired.append((sched.now, tag))
        handles[victim].cancel()

    handles["b"] = sched.schedule_at(1e-5, fire, ("b",), PRIORITY_NORMAL)
    sched.schedule_at(1e-5, fire_and_cancel, ("a", "b"), PRIORITY_URGENT)
    sched.run_until()
    assert [tag for _, tag in fired] == ["a"]


def test_retained_handle_is_never_recycled():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    kept = sched.schedule_at(0.001, fire, ("kept",))
    sched.run_until()
    # We still hold `kept`, so the scheduler must not have pooled it: new
    # schedules get fresh (or separately pooled) handles, and our fields
    # stay frozen at the fired values.
    assert kept not in sched._free
    assert kept.time == 0.001
    fresh = sched.schedule_at(0.002, fire, ("fresh",))
    assert fresh is not kept
    sched.run_until()
    assert [tag for _, tag in fired] == ["kept", "fresh"]


def test_unreferenced_handles_are_recycled_through_free_list():
    sched = Scheduler(wheel=True)
    fired, fire = make_recorder(sched)
    for index in range(10):
        sched.schedule_at(index * 1e-4, fire, (index,))  # handle dropped
    sched.run_until()
    assert len(fired) == 10
    pooled = list(sched._free)
    assert pooled  # fired handles with no outside reference were pooled
    reused = sched.schedule_at(1.0, fire, ("reused",))
    assert any(reused is handle for handle in pooled)
    sched.run_until()
    assert fired[-1] == (1.0, "reused")


def test_schedule_in_past_rejected_on_both_backends():
    for wheel in (True, False):
        sched = Scheduler(wheel=wheel)
        sched.schedule_at(1.0, lambda: None)
        sched.run_until()
        with pytest.raises(SimulationError):
            sched.schedule_at(0.5, lambda: None)


def test_env_var_selects_heap_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "heap")
    assert Scheduler()._wheel is None
    monkeypatch.delenv(BACKEND_ENV)
    assert Scheduler()._wheel is not None


# Randomized differential: the wheel+heap scheduler and the heap-only
# scheduler must execute the exact same (time, tag) sequence for the same
# driving workload — including nested scheduling and cancellations from
# inside callbacks, ties, and events beyond the wheel horizon.

_DELAY_BANDS = (0.0, 1e-5, 3e-4, 0.05, 2.0, 120.0, HORIZON_S + 300.0)


def _drive(seed, wheel):
    rng = random.Random(seed)
    sched = Scheduler(wheel=wheel)
    fired = []
    pending = []

    def fire(tag):
        fired.append((sched.now, tag))
        roll = rng.random()
        if roll < 0.25:
            delay = rng.choice(_DELAY_BANDS) * rng.random()
            pending.append(sched.schedule_after(delay, fire, (tag * 31 + 7,)))
        elif roll < 0.35 and pending:
            pending.pop(rng.randrange(len(pending))).cancel()

    for tag in range(300):
        delay = rng.choice(_DELAY_BANDS) * rng.random()
        if rng.random() < 0.2:
            delay = round(delay, 3)  # force exact-time ties across events
        priority = rng.choice((PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_LOW))
        pending.append(sched.schedule_at(delay, fire, (tag,), priority))
    for index in range(0, len(pending), 7):
        pending[index].cancel()
    sched.run_until(max_events=5000)
    return fired


@pytest.mark.parametrize("seed", [1, 42, 20260806])
def test_differential_wheel_matches_heap_exactly(seed):
    wheel_run = _drive(seed, wheel=True)
    heap_run = _drive(seed, wheel=False)
    assert len(wheel_run) > 250
    assert wheel_run == heap_run  # same times, same order, bit-identical

"""Tests for seeded RNG streams and the tracer."""

from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.trace import PrintSink, RecordingSink, Tracer


def test_same_seed_same_stream():
    a = RandomStreams(42).stream("tcp.isn")
    b = RandomStreams(42).stream("tcp.isn")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(42)
    first = [streams.stream("one").random() for _ in range(5)]
    second = [streams.stream("two").random() for _ in range(5)]
    assert first != second


def test_stream_creation_order_does_not_matter():
    forward = RandomStreams(7)
    x1 = forward.stream("x").random()
    _ = forward.stream("y").random()

    backward = RandomStreams(7)
    _ = backward.stream("y").random()
    x2 = backward.stream("x").random()
    assert x1 == x2


def test_reseed_clears_streams():
    streams = RandomStreams(1)
    before = streams.stream("s").random()
    streams.reseed(1)
    after = streams.stream("s").random()
    assert before == after  # same seed reproduces from scratch


def test_tracer_disabled_by_default():
    tracer = Tracer()
    assert not tracer.enabled
    tracer.emit(0.0, "x", "y")  # no sinks: must be a no-op


def test_recording_sink_collects():
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    tracer.emit(1.0, "tcp", "send", seq=5)
    tracer.emit(2.0, "ip", "drop")
    assert len(sink.records) == 2
    assert sink.of_category("tcp")[0].fields == {"seq": 5}
    assert [r.event for r in sink.of_event("drop")] == ["drop"]


def test_category_filter():
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink, categories=["tcp"])
    tracer.emit(0.0, "tcp", "send")
    tracer.emit(0.0, "ip", "drop")
    assert [r.category for r in sink.records] == ["tcp"]


def test_remove_sink_disables_when_empty():
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink)
    tracer.remove_sink(sink)
    assert not tracer.enabled


def test_removing_filtered_sink_drops_its_categories():
    tracer = Tracer()
    tcp_sink = RecordingSink()
    ip_sink = RecordingSink()
    tracer.add_sink(tcp_sink, categories=["tcp"])
    tracer.add_sink(ip_sink, categories=["ip"])
    tracer.remove_sink(tcp_sink)
    tracer.emit(0.0, "tcp", "send")
    tracer.emit(0.0, "ip", "drop")
    assert [r.category for r in ip_sink.records] == ["ip"]


def test_removing_wildcard_sink_restores_filter():
    tracer = Tracer()
    wildcard = RecordingSink()
    filtered = RecordingSink()
    tracer.add_sink(filtered, categories=["tcp"])
    tracer.add_sink(wildcard)
    tracer.emit(0.0, "ip", "drop")  # only the wildcard sink sees this
    assert [r.category for r in wildcard.records] == ["ip"]
    assert filtered.records == []
    tracer.remove_sink(wildcard)
    tracer.emit(0.0, "ip", "drop")  # filter is tight again
    tracer.emit(0.0, "tcp", "send")
    assert [r.category for r in filtered.records] == ["tcp"]
    assert tracer.enabled


def test_two_differently_filtered_sinks_stay_isolated():
    # Regression: the union fast-path filter must not leak one sink's
    # categories into another — a ["tcp"] sink used to receive "link"
    # records whenever any other sink subscribed to them.
    tracer = Tracer()
    tcp_sink = RecordingSink()
    link_sink = RecordingSink()
    tracer.add_sink(tcp_sink, categories=["tcp"])
    tracer.add_sink(link_sink, categories=["link"])
    tracer.emit(0.0, "link", "drop")
    tracer.emit(0.0, "tcp", "send")
    tracer.emit(0.0, "nic", "rx_loss")  # matches neither sink
    assert [r.category for r in tcp_sink.records] == ["tcp"]
    assert [r.category for r in link_sink.records] == ["link"]


def test_remove_unknown_sink_is_noop():
    tracer = Tracer()
    sink = RecordingSink()
    tracer.add_sink(sink, categories=["tcp"])
    tracer.remove_sink(RecordingSink())
    tracer.emit(0.0, "tcp", "send")
    assert len(sink.records) == 1


def test_print_sink_renders(capsys):
    sink = PrintSink(prefix="T ")
    tracer = Tracer()
    tracer.add_sink(sink)
    tracer.emit(1.5, "tcp", "send", seq=10)
    out = capsys.readouterr().out
    assert "tcp/send" in out
    assert "seq=10" in out


def test_simulator_deterministic_across_runs():
    def run_once():
        sim = Simulator(seed=99)
        values = []

        def proc():
            rng = sim.random.stream("jitter")
            for _ in range(3):
                yield sim.timeout(rng.random())
                values.append(sim.now)

        sim.spawn(proc())
        sim.run()
        return values

    assert run_once() == run_once()
